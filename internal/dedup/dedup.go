// Package dedup implements content-addressed deduplication of public
// parts. The P3 design stores the public part of every photo in the
// untrusted PSP — which means millions of users re-uploading the same
// photo can share one stored blob, one cache entry, and one upload's
// bandwidth, as long as public parts are addressed by content rather
// than by uploader.
//
// Store is a PhotoService middleware: it hashes every uploaded public
// JPEG (SHA-256 of the canonical bytes the codec produced), uploads each
// distinct content exactly once to the wrapped provider, and hands every
// logical upload its own minted photo ID mapped onto the shared provider
// blob. Secret parts are untouched: each logical upload keeps its own
// sealed secret under its own ID, so the Disk/Sharded/Erasure secret
// store layering doesn't change at all.
//
// # Concurrency and delete safety
//
// Two invariants carry the whole design, and the property/race tests in
// this package pin both:
//
//   - A content hash is uploaded to the provider at most once per life
//     of the blob. Concurrent identical uploads coalesce onto one
//     in-flight provider upload (per-hash singleflight); without it, two
//     racers would both upload and one provider blob would be orphaned,
//     unreferenced by the index forever.
//   - A reference count never goes negative, and a provider blob is
//     never shared after its count hits zero. Delete tombstones the
//     entry and unlinks it from the hash index in the same critical
//     section that drops the last reference, so an upload racing the
//     delete can only miss and re-upload fresh — it can never adopt the
//     dying blob. Tombstones whose provider delete failed are parked and
//     retried by Scrub.
//
// The index itself is in-memory, like the proxy's serving caches: a
// restarted proxy re-uploads on first miss and re-converges. Metrics are
// exported as p3_dedup_* (see ARCHITECTURE.md).
package dedup

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"
	"sync"

	"p3"
	"p3/internal/metrics"
)

// Option configures a Store.
type Option func(*config)

type config struct {
	registry *metrics.Registry
	name     string
}

// WithRegistry points the store's p3_dedup_* series at a private registry
// instead of metrics.Default (tests; multi-store processes).
func WithRegistry(r *metrics.Registry) Option {
	return func(c *config) { c.registry = r }
}

// WithName sets the store="..." label on this instance's metric series
// (default "dedup").
func WithName(name string) Option {
	return func(c *config) { c.name = name }
}

// entry is one distinct public-part content: the provider blob it lives
// in and every logical photo ID referencing it.
type entry struct {
	hash string // content hash, hex
	size int64  // public part bytes (storage-saved accounting)
	dims [2]int // provider stored dims, when reported

	// Singleflight state for the first upload of this content: ready is
	// closed once the leader's provider upload finished; pspID/err are
	// valid only after that. Followers arriving mid-flight wait on ready
	// instead of racing a second provider upload.
	ready chan struct{}
	pspID string
	err   error

	// refs counts live logical IDs. Guarded by Store.mu.
	refs int

	// tombstone marks a dead entry: refs hit zero and the provider blob
	// is dying or dead. A tombstoned entry is already unlinked from
	// byHash, so it can never be shared again; pspDeleted records whether
	// the provider delete landed (Scrub retries the ones that failed).
	tombstone  bool
	pspDeleted bool
}

// Store deduplicates public parts in front of any PhotoService. It
// implements PhotoService, UploadDimsService and PhotoDeleter.
type Store struct {
	next p3.PhotoService

	mu     sync.Mutex
	byHash map[string]*entry // live + in-flight entries by content hash
	byID   map[string]*entry // logical photo ID → its entry
	tombs  []*entry          // dead entries awaiting provider delete
	seq    uint64            // logical ID minting

	uploads      *metrics.Counter
	dupHits      *metrics.Counter
	pspUploads   *metrics.Counter
	deletes      *metrics.Counter
	pspDeletes   *metrics.Counter
	bytesLogical *metrics.Counter
	bytesStored  *metrics.Counter
	bytesSaved   *metrics.Counter
	negativeRefs *metrics.Counter // alarm: must stay zero forever
}

// New wraps next in a content-addressed dedup layer.
func New(next p3.PhotoService, opts ...Option) *Store {
	cfg := config{registry: metrics.Default, name: "dedup"}
	for _, opt := range opts {
		opt(&cfg)
	}
	s := &Store{
		next:   next,
		byHash: make(map[string]*entry),
		byID:   make(map[string]*entry),
	}
	r := cfg.registry
	labels := []metrics.Label{{Key: "store", Value: cfg.name}}
	s.uploads = r.Counter("p3_dedup_uploads_total",
		"Logical public-part uploads through the dedup layer.", labels...)
	s.dupHits = r.Counter("p3_dedup_dup_hits_total",
		"Uploads that shared an already-stored content hash.", labels...)
	s.pspUploads = r.Counter("p3_dedup_provider_uploads_total",
		"Distinct contents actually uploaded to the provider.", labels...)
	s.deletes = r.Counter("p3_dedup_deletes_total",
		"Logical photo deletions (reference drops).", labels...)
	s.pspDeletes = r.Counter("p3_dedup_provider_deletes_total",
		"Provider blobs deleted after their last reference dropped.", labels...)
	s.bytesLogical = r.Counter("p3_dedup_bytes_logical_total",
		"Public-part bytes uploaded logically (before dedup).", labels...)
	s.bytesStored = r.Counter("p3_dedup_bytes_stored_total",
		"Public-part bytes actually sent to the provider.", labels...)
	s.bytesSaved = r.Counter("p3_dedup_bytes_saved_total",
		"Public-part bytes dedup kept off the provider.", labels...)
	s.negativeRefs = r.Counter("p3_dedup_negative_refs_total",
		"Reference counts observed below zero (alarm metric; must stay 0).", labels...)
	r.SetGaugeFunc("p3_dedup_unique_blobs", "Distinct contents currently stored.",
		func() float64 { s.mu.Lock(); defer s.mu.Unlock(); return float64(len(s.byHash)) }, labels...)
	r.SetGaugeFunc("p3_dedup_logical_photos", "Logical photo IDs currently live.",
		func() float64 { s.mu.Lock(); defer s.mu.Unlock(); return float64(len(s.byID)) }, labels...)
	r.SetGaugeFunc("p3_dedup_tombstones", "Dead entries awaiting provider delete.",
		func() float64 { s.mu.Lock(); defer s.mu.Unlock(); return float64(len(s.tombs)) }, labels...)
	return s
}

// HashContent returns the content address of a public part: the hex
// SHA-256 of its canonical JPEG bytes.
func HashContent(jpegBytes []byte) string {
	sum := sha256.Sum256(jpegBytes)
	return hex.EncodeToString(sum[:])
}

// mintLocked creates a fresh logical ID referencing e. Caller holds mu
// and has already accounted e.refs.
func (s *Store) mintLocked(e *entry) string {
	s.seq++
	id := fmt.Sprintf("dd-%s-%d", e.hash[:16], s.seq)
	s.byID[id] = e
	return id
}

// minted reports whether id carries the layer's own minting shape. Such
// IDs never exist on the provider directly, so an unknown minted ID is a
// definitive not-found — forwarding it would hit providers whose delete
// is idempotent and falsely report success.
func minted(id string) bool { return strings.HasPrefix(id, "dd-") }

// UploadPhoto implements PhotoService: logical upload with dedup.
func (s *Store) UploadPhoto(ctx context.Context, jpegBytes []byte) (string, error) {
	id, _, _, err := s.upload(ctx, jpegBytes)
	return id, err
}

// UploadPhotoWithDims implements UploadDimsService. Duplicate uploads
// report the stored dimensions recorded when the content was first
// uploaded (0, 0 when the wrapped provider never reported any).
func (s *Store) UploadPhotoWithDims(ctx context.Context, jpegBytes []byte) (string, int, int, error) {
	return s.upload(ctx, jpegBytes)
}

func (s *Store) upload(ctx context.Context, jpegBytes []byte) (string, int, int, error) {
	hash := HashContent(jpegBytes)
	s.uploads.Inc()
	s.bytesLogical.Add(uint64(len(jpegBytes)))
	for {
		s.mu.Lock()
		if e, ok := s.byHash[hash]; ok {
			select {
			case <-e.ready:
				if e.err == nil {
					// Dup hit: adopt the shared blob. The increment happens in
					// the same critical section as the lookup, so a racing
					// delete either saw our reference or we saw its tombstone.
					e.refs++
					id := s.mintLocked(e)
					s.dupHits.Inc()
					s.bytesSaved.Add(uint64(len(jpegBytes)))
					s.mu.Unlock()
					return id, e.dims[0], e.dims[1], nil
				}
				// The leader failed and removed the entry; our pointer is
				// stale. Retry from the top (a fresh leader may succeed).
				s.mu.Unlock()
				continue
			default:
				// First upload still in flight: wait for the leader off-lock.
				s.mu.Unlock()
				select {
				case <-e.ready:
					continue
				case <-ctx.Done():
					return "", 0, 0, ctx.Err()
				}
			}
		}
		// Miss (or a tombstoned predecessor already unlinked): become the
		// leader for this content.
		e := &entry{hash: hash, ready: make(chan struct{})}
		s.byHash[hash] = e
		s.mu.Unlock()

		pspID, w, h, err := s.uploadNext(ctx, jpegBytes)
		s.mu.Lock()
		if err != nil {
			e.err = err
			if s.byHash[hash] == e {
				delete(s.byHash, hash)
			}
			close(e.ready)
			s.mu.Unlock()
			return "", 0, 0, err
		}
		e.pspID = pspID
		e.size = int64(len(jpegBytes))
		e.dims = [2]int{w, h}
		e.refs = 1
		id := s.mintLocked(e)
		close(e.ready)
		s.pspUploads.Inc()
		s.bytesStored.Add(uint64(len(jpegBytes)))
		s.mu.Unlock()
		return id, w, h, nil
	}
}

// uploadNext performs the single provider upload for a new content.
func (s *Store) uploadNext(ctx context.Context, jpegBytes []byte) (id string, w, h int, err error) {
	if ud, ok := s.next.(p3.UploadDimsService); ok {
		return ud.UploadPhotoWithDims(ctx, jpegBytes)
	}
	id, err = s.next.UploadPhoto(ctx, jpegBytes)
	return id, 0, 0, err
}

// FetchPhoto implements PhotoService: logical ID → shared provider blob.
// IDs the dedup layer never minted are forwarded untouched, so a store
// can front a provider holding a pre-dedup corpus.
func (s *Store) FetchPhoto(ctx context.Context, id string, v p3.PhotoVariant) ([]byte, error) {
	s.mu.Lock()
	e, ok := s.byID[id]
	var pspID string
	if ok {
		pspID = e.pspID
	}
	s.mu.Unlock()
	if !ok {
		if minted(id) {
			return nil, &p3.NotFoundError{Kind: "photo", ID: id}
		}
		return s.next.FetchPhoto(ctx, id, v)
	}
	return s.next.FetchPhoto(ctx, pspID, v)
}

// DeletePhoto implements PhotoDeleter: drop one logical reference;
// delete the provider blob only when the last reference goes. Deleting
// an ID the layer never minted forwards to the provider when it supports
// deletion.
//
// The tombstone transition and the byHash unlink happen atomically with
// the refs→0 decrement, so no concurrent upload can adopt the dying
// provider blob; the provider delete itself runs off-lock (it is I/O),
// and a failure parks the tombstone for Scrub to retry.
func (s *Store) DeletePhoto(ctx context.Context, id string) error {
	s.mu.Lock()
	e, ok := s.byID[id]
	if !ok {
		s.mu.Unlock()
		if d, ok := s.next.(p3.PhotoDeleter); ok && !minted(id) {
			return d.DeletePhoto(ctx, id)
		}
		return &p3.NotFoundError{Kind: "photo", ID: id}
	}
	delete(s.byID, id)
	s.deletes.Inc()
	e.refs--
	if e.refs < 0 {
		// Impossible by construction (each logical ID is deletable once —
		// its byID link is consumed above); counted so a regression screams.
		s.negativeRefs.Inc()
		e.refs = 0
	}
	if e.refs > 0 {
		s.mu.Unlock()
		return nil
	}
	e.tombstone = true
	if s.byHash[e.hash] == e {
		delete(s.byHash, e.hash)
	}
	s.tombs = append(s.tombs, e)
	pspID := e.pspID
	s.mu.Unlock()

	err := s.deleteNext(ctx, pspID)
	s.mu.Lock()
	if err == nil {
		e.pspDeleted = true
	}
	s.mu.Unlock()
	if err != nil {
		return fmt.Errorf("dedup: deleting provider blob %q (parked for scrub retry): %w", pspID, err)
	}
	return nil
}

// deleteNext removes the provider blob, when the provider supports it. A
// provider without deletion counts as deleted: there is nothing more the
// dedup layer could ever do with the blob.
func (s *Store) deleteNext(ctx context.Context, pspID string) error {
	d, ok := s.next.(p3.PhotoDeleter)
	if !ok {
		return nil
	}
	if err := d.DeletePhoto(ctx, pspID); err != nil && !p3.IsNotFound(err) {
		return err
	}
	s.pspDeletes.Inc()
	return nil
}

// Stats is a snapshot of the dedup layer for /stats and the bench
// harness. Field names correspond 1:1 to the p3_dedup_* series.
type Stats struct {
	Uploads         uint64 `json:"uploads"`
	DupHits         uint64 `json:"dup_hits"`
	ProviderUploads uint64 `json:"provider_uploads"`
	Deletes         uint64 `json:"deletes"`
	ProviderDeletes uint64 `json:"provider_deletes"`
	BytesLogical    uint64 `json:"bytes_logical"`
	BytesStored     uint64 `json:"bytes_stored"`
	BytesSaved      uint64 `json:"bytes_saved"`
	NegativeRefs    uint64 `json:"negative_refs"`
	UniqueBlobs     int    `json:"unique_blobs"`
	LogicalPhotos   int    `json:"logical_photos"`
	Tombstones      int    `json:"tombstones"`
}

// Stats returns the current counters and index sizes.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Uploads:         s.uploads.Value(),
		DupHits:         s.dupHits.Value(),
		ProviderUploads: s.pspUploads.Value(),
		Deletes:         s.deletes.Value(),
		ProviderDeletes: s.pspDeletes.Value(),
		BytesLogical:    s.bytesLogical.Value(),
		BytesStored:     s.bytesStored.Value(),
		BytesSaved:      s.bytesSaved.Value(),
		NegativeRefs:    s.negativeRefs.Value(),
		UniqueBlobs:     len(s.byHash),
		LogicalPhotos:   len(s.byID),
		Tombstones:      len(s.tombs),
	}
}

// DedupStats is Stats under a collision-proof name, so wrappers can be
// detected by interface assertion (the proxy's dedupStatser) without
// clashing with other backends' Stats methods.
func (s *Store) DedupStats() Stats { return s.Stats() }

// ScrubReport summarizes one Scrub pass.
type ScrubReport struct {
	Tombstones     int `json:"tombstones"`      // parked tombstones examined
	RetriedDeletes int `json:"retried_deletes"` // provider deletes retried
	FailedDeletes  int `json:"failed_deletes"`  // retries that failed again
	Dropped        int `json:"dropped"`         // tombstones fully resolved
	RefErrors      int `json:"ref_errors"`      // refcount invariant violations found
}

// Scrub retries parked provider deletes and audits the refcount
// invariants (refcounts match the live ID set; nothing negative; no
// tombstone reachable from the hash index). It is safe to run
// concurrently with uploads and deletes.
func (s *Store) Scrub(ctx context.Context) (ScrubReport, error) {
	var rep ScrubReport
	// Snapshot the parked tombstones, retry their deletes off-lock.
	s.mu.Lock()
	parked := append([]*entry(nil), s.tombs...)
	s.mu.Unlock()
	rep.Tombstones = len(parked)
	for _, e := range parked {
		s.mu.Lock()
		done := e.pspDeleted
		pspID := e.pspID
		s.mu.Unlock()
		if !done {
			rep.RetriedDeletes++
			if err := s.deleteNext(ctx, pspID); err != nil {
				rep.FailedDeletes++
				continue
			}
			s.mu.Lock()
			e.pspDeleted = true
			s.mu.Unlock()
		}
	}
	// Drop fully resolved tombstones and audit the index.
	s.mu.Lock()
	kept := s.tombs[:0]
	for _, e := range s.tombs {
		if e.pspDeleted {
			rep.Dropped++
		} else {
			kept = append(kept, e)
		}
	}
	s.tombs = kept
	rep.RefErrors = s.auditLocked()
	s.mu.Unlock()
	return rep, nil
}

// auditLocked recomputes every entry's reference count from the live ID
// set and returns how many entries disagree with their counter or are
// otherwise inconsistent (live-but-tombstoned, negative, unreachable).
func (s *Store) auditLocked() int {
	counts := make(map[*entry]int, len(s.byHash))
	for _, e := range s.byID {
		counts[e]++
	}
	errs := 0
	for _, e := range s.byHash {
		if e.tombstone {
			errs++ // tombstones must be unlinked from byHash
		}
		select {
		case <-e.ready:
			if e.err == nil && (e.refs != counts[e] || e.refs <= 0) {
				errs++
			}
		default:
			// In-flight first upload: refs not yet accounted.
		}
	}
	for e, n := range counts {
		if e.refs != n || e.tombstone {
			errs++
		}
	}
	return errs
}

// CheckInvariants audits the index and returns an error describing any
// violation; the property and hammer tests call it after every phase.
func (s *Store) CheckInvariants() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n := s.auditLocked(); n > 0 {
		return fmt.Errorf("dedup: %d refcount invariant violations", n)
	}
	if v := s.negativeRefs.Value(); v > 0 {
		return fmt.Errorf("dedup: %d negative refcount transitions observed", v)
	}
	return nil
}
