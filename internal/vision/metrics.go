// Package vision implements the objective privacy-evaluation attacks of the
// paper's §5.2.2 against P3 public parts: PSNR degradation, Canny edge
// detection (with the matching-pixel-ratio metric of Fig. 8a), and shared
// grayscale plumbing for the Haar face detector, SIFT extractor and
// Eigenfaces recognizer in the subpackages.
package vision

import (
	"fmt"
	"math"

	"p3/internal/jpegx"
)

// MSE returns the mean squared error between two images of identical shape,
// clamping samples to the displayable [0, 255] range first (privacy attacks
// see 8-bit images).
func MSE(a, b *jpegx.PlanarImage) (float64, error) {
	if a.Width != b.Width || a.Height != b.Height || len(a.Planes) != len(b.Planes) {
		return 0, fmt.Errorf("vision: shape mismatch %dx%dx%d vs %dx%dx%d",
			a.Width, a.Height, len(a.Planes), b.Width, b.Height, len(b.Planes))
	}
	var sum float64
	var n int
	for pi := range a.Planes {
		pa, pb := a.Planes[pi], b.Planes[pi]
		for i := range pa {
			d := clamp255(pa[i]) - clamp255(pb[i])
			sum += d * d
			n++
		}
	}
	return sum / float64(n), nil
}

// PSNR returns the peak signal-to-noise ratio in dB (peak 255). Identical
// images yield +Inf.
func PSNR(a, b *jpegx.PlanarImage) (float64, error) {
	mse, err := MSE(a, b)
	if err != nil {
		return 0, err
	}
	if mse == 0 {
		return math.Inf(1), nil
	}
	return 10 * math.Log10(255*255/mse), nil
}

// Luma returns the luminance plane of an image as a Gray buffer (w×h
// float64). For 3-plane images this is plane 0 (images are YCbCr planar).
func Luma(img *jpegx.PlanarImage) *Gray {
	g := &Gray{W: img.Width, H: img.Height, Pix: make([]float64, img.Width*img.Height)}
	copy(g.Pix, img.Planes[0])
	for i, v := range g.Pix {
		g.Pix[i] = clamp255(v)
	}
	return g
}

// Gray is a single-channel float image used by the detectors.
type Gray struct {
	W, H int
	Pix  []float64
}

// NewGray allocates a zeroed grayscale buffer.
func NewGray(w, h int) *Gray { return &Gray{W: w, H: h, Pix: make([]float64, w*h)} }

// At returns the sample at (x, y) with edge replication for out-of-bounds
// coordinates.
func (g *Gray) At(x, y int) float64 {
	if x < 0 {
		x = 0
	} else if x >= g.W {
		x = g.W - 1
	}
	if y < 0 {
		y = 0
	} else if y >= g.H {
		y = g.H - 1
	}
	return g.Pix[y*g.W+x]
}

// Set writes the sample at (x, y); out-of-bounds writes are ignored.
func (g *Gray) Set(x, y int, v float64) {
	if x < 0 || y < 0 || x >= g.W || y >= g.H {
		return
	}
	g.Pix[y*g.W+x] = v
}

// Clone deep-copies the buffer.
func (g *Gray) Clone() *Gray {
	return &Gray{W: g.W, H: g.H, Pix: append([]float64(nil), g.Pix...)}
}

// Binary is a binary image (edge maps and masks).
type Binary struct {
	W, H int
	Pix  []bool
}

// NewBinary allocates a cleared binary image.
func NewBinary(w, h int) *Binary { return &Binary{W: w, H: h, Pix: make([]bool, w*h)} }

// Count returns the number of set pixels.
func (b *Binary) Count() int {
	n := 0
	for _, v := range b.Pix {
		if v {
			n++
		}
	}
	return n
}

// MatchRatio is the Fig. 8a metric: the fraction of set pixels in ref that
// are also set in got. The paper plots the matching ratio of edge pixels
// detected on the public part against those on the original. A ref with no
// set pixels yields 0.
func MatchRatio(ref, got *Binary) (float64, error) {
	if ref.W != got.W || ref.H != got.H {
		return 0, fmt.Errorf("vision: binary shape mismatch %dx%d vs %dx%d", ref.W, ref.H, got.W, got.H)
	}
	total, match := 0, 0
	for i, r := range ref.Pix {
		if !r {
			continue
		}
		total++
		if got.Pix[i] {
			match++
		}
	}
	if total == 0 {
		return 0, nil
	}
	return float64(match) / float64(total), nil
}

func clamp255(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return v
}
