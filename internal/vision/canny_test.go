package vision

import (
	"math"
	"math/rand"
	"testing"

	"p3/internal/jpegx"
)

func TestMSEAndPSNR(t *testing.T) {
	a := jpegx.NewPlanarImage(4, 4, 1)
	b := jpegx.NewPlanarImage(4, 4, 1)
	for i := range a.Planes[0] {
		a.Planes[0][i] = 100
		b.Planes[0][i] = 110
	}
	mse, err := MSE(a, b)
	if err != nil || mse != 100 {
		t.Errorf("MSE = %v (%v), want 100", mse, err)
	}
	p, _ := PSNR(a, b)
	want := 10 * math.Log10(255*255/100.0)
	if math.Abs(p-want) > 1e-9 {
		t.Errorf("PSNR = %v, want %v", p, want)
	}
	same, _ := PSNR(a, a)
	if !math.IsInf(same, 1) {
		t.Errorf("identical PSNR = %v, want +Inf", same)
	}
	if _, err := MSE(a, jpegx.NewPlanarImage(3, 3, 1)); err == nil {
		t.Error("shape mismatch not reported")
	}
	// Out-of-range values are clamped before comparison.
	c := jpegx.NewPlanarImage(4, 4, 1)
	d := jpegx.NewPlanarImage(4, 4, 1)
	for i := range c.Planes[0] {
		c.Planes[0][i] = -500 // clamps to 0
		d.Planes[0][i] = 0
	}
	if mse, _ := MSE(c, d); mse != 0 {
		t.Errorf("clamped MSE = %v, want 0", mse)
	}
}

func TestMatchRatio(t *testing.T) {
	ref := NewBinary(4, 4)
	got := NewBinary(4, 4)
	ref.Pix[0], ref.Pix[1], ref.Pix[2], ref.Pix[3] = true, true, true, true
	got.Pix[0], got.Pix[1] = true, true
	r, err := MatchRatio(ref, got)
	if err != nil || r != 0.5 {
		t.Errorf("ratio = %v (%v), want 0.5", r, err)
	}
	empty := NewBinary(4, 4)
	if r, _ := MatchRatio(empty, got); r != 0 {
		t.Errorf("empty-ref ratio = %v", r)
	}
	if _, err := MatchRatio(ref, NewBinary(3, 3)); err == nil {
		t.Error("shape mismatch not reported")
	}
	if ref.Count() != 4 || got.Count() != 2 {
		t.Error("Count wrong")
	}
}

func TestGrayAtEdgeReplication(t *testing.T) {
	g := NewGray(3, 2)
	for i := range g.Pix {
		g.Pix[i] = float64(i)
	}
	if g.At(-5, 0) != g.At(0, 0) || g.At(10, 10) != g.At(2, 1) {
		t.Error("edge replication broken")
	}
	g.Set(-1, -1, 99) // ignored
	g.Set(1, 1, 42)
	if g.At(1, 1) != 42 {
		t.Error("Set failed")
	}
}

// step image: left dark, right bright — one clean vertical edge.
func stepImage(w, h int) *Gray {
	g := NewGray(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x >= w/2 {
				g.Pix[y*w+x] = 200
			} else {
				g.Pix[y*w+x] = 40
			}
		}
	}
	return g
}

func TestCannyFindsStepEdge(t *testing.T) {
	g := stepImage(40, 30)
	edges := Canny{}.Detect(g)
	// Edge pixels must exist and concentrate on the central column band.
	if edges.Count() == 0 {
		t.Fatal("no edges detected on a step image")
	}
	onEdge, offEdge := 0, 0
	for y := 0; y < 30; y++ {
		for x := 0; x < 40; x++ {
			if edges.Pix[y*40+x] {
				if x >= 17 && x <= 23 {
					onEdge++
				} else {
					offEdge++
				}
			}
		}
	}
	if onEdge == 0 || offEdge > onEdge/2 {
		t.Errorf("edges misplaced: %d on the step, %d elsewhere", onEdge, offEdge)
	}
}

func TestCannyFlatImageNoEdges(t *testing.T) {
	g := NewGray(32, 32)
	for i := range g.Pix {
		g.Pix[i] = 128
	}
	if n := (Canny{}).Detect(g).Count(); n != 0 {
		t.Errorf("%d edge pixels on a flat image", n)
	}
}

func TestCannyThinEdges(t *testing.T) {
	// Non-max suppression should keep the step edge ≤ ~2px wide per row.
	g := stepImage(64, 16)
	edges := Canny{}.Detect(g)
	for y := 2; y < 14; y++ {
		n := 0
		for x := 0; x < 64; x++ {
			if edges.Pix[y*64+x] {
				n++
			}
		}
		if n > 3 {
			t.Errorf("row %d has %d edge pixels, want thin edge", y, n)
		}
	}
}

func TestCannyNoiseRobustness(t *testing.T) {
	// Pure noise should produce far fewer edges than a structured image at
	// the same thresholds.
	rng := rand.New(rand.NewSource(2))
	noise := NewGray(48, 48)
	for i := range noise.Pix {
		noise.Pix[i] = 120 + rng.Float64()*16 - 8
	}
	structured := stepImage(48, 48)
	ne := Canny{}.Detect(noise).Count()
	se := Canny{}.Detect(structured).Count()
	if ne >= se {
		t.Errorf("noise edges %d >= structured edges %d", ne, se)
	}
}

func TestCannyHysteresisLinksWeakEdges(t *testing.T) {
	// A ramp edge whose gradient fades below the high threshold should stay
	// connected through hysteresis where a pure high-threshold cut breaks.
	g := NewGray(40, 40)
	for y := 0; y < 40; y++ {
		contrast := 160 - float64(y)*3 // strong at top, weak at bottom
		for x := 0; x < 40; x++ {
			if x >= 20 {
				g.Pix[y*40+x] = 40 + contrast
			} else {
				g.Pix[y*40+x] = 40
			}
		}
	}
	loose := Canny{Low: 10, High: 50}.Detect(g)
	strict := Canny{Low: 49.9, High: 50}.Detect(g)
	if loose.Count() <= strict.Count() {
		t.Errorf("hysteresis had no effect: loose %d <= strict %d", loose.Count(), strict.Count())
	}
}

func TestLumaClamps(t *testing.T) {
	img := jpegx.NewPlanarImage(2, 1, 3)
	img.Planes[0][0] = -40
	img.Planes[0][1] = 300
	g := Luma(img)
	if g.Pix[0] != 0 || g.Pix[1] != 255 {
		t.Errorf("luma = %v", g.Pix)
	}
}
