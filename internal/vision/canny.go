package vision

import "math"

// Canny implements the Canny edge detector (Canny 1986), the attack of the
// paper's Fig. 8a/9: Gaussian smoothing, Sobel gradients, non-maximum
// suppression along the gradient direction, and double-threshold hysteresis.
type Canny struct {
	// Sigma is the Gaussian pre-smoothing σ. 0 means the conventional 1.4.
	Sigma float64
	// Low and High are the hysteresis thresholds on gradient magnitude
	// (Sobel responses normalized by 1/4, so a step of height h smoothed
	// by the Gaussian registers roughly h/3). Zeros mean 8 and 24.
	Low, High float64
}

// Detect returns the binary edge map of a grayscale image.
func (c Canny) Detect(img *Gray) *Binary {
	sigma := c.Sigma
	if sigma == 0 {
		sigma = 1.4
	}
	low, high := c.Low, c.High
	if high == 0 {
		high = 24
	}
	if low == 0 {
		low = high / 3
	}

	smoothed := gaussianGray(img, sigma)
	mag, dir := sobel(smoothed)
	thin := nonMaxSuppress(mag, dir)
	return hysteresis(thin, low, high)
}

// gaussianGray blurs with a normalized 1-D separable Gaussian kernel.
func gaussianGray(img *Gray, sigma float64) *Gray {
	r := int(math.Ceil(3 * sigma))
	k := make([]float64, 2*r+1)
	var sum float64
	for i := -r; i <= r; i++ {
		v := math.Exp(-float64(i*i) / (2 * sigma * sigma))
		k[i+r] = v
		sum += v
	}
	for i := range k {
		k[i] /= sum
	}
	tmp := NewGray(img.W, img.H)
	for y := 0; y < img.H; y++ {
		for x := 0; x < img.W; x++ {
			var acc float64
			for i, kv := range k {
				acc += kv * img.At(x+i-r, y)
			}
			tmp.Pix[y*img.W+x] = acc
		}
	}
	out := NewGray(img.W, img.H)
	for y := 0; y < img.H; y++ {
		for x := 0; x < img.W; x++ {
			var acc float64
			for i, kv := range k {
				acc += kv * tmp.At(x, y+i-r)
			}
			out.Pix[y*img.W+x] = acc
		}
	}
	return out
}

// sobel returns gradient magnitude (scaled by 1/4 to stay 8-bit-comparable)
// and quantized direction (0: E-W, 1: NE-SW, 2: N-S, 3: NW-SE).
func sobel(img *Gray) (*Gray, []uint8) {
	mag := NewGray(img.W, img.H)
	dir := make([]uint8, img.W*img.H)
	for y := 0; y < img.H; y++ {
		for x := 0; x < img.W; x++ {
			gx := -img.At(x-1, y-1) + img.At(x+1, y-1) +
				-2*img.At(x-1, y) + 2*img.At(x+1, y) +
				-img.At(x-1, y+1) + img.At(x+1, y+1)
			gy := -img.At(x-1, y-1) - 2*img.At(x, y-1) - img.At(x+1, y-1) +
				img.At(x-1, y+1) + 2*img.At(x, y+1) + img.At(x+1, y+1)
			m := math.Hypot(gx, gy) / 4
			mag.Pix[y*img.W+x] = m
			// Quantize the gradient angle to one of 4 sectors.
			angle := math.Atan2(gy, gx) // [-π, π]
			if angle < 0 {
				angle += math.Pi
			}
			var d uint8
			switch {
			case angle < math.Pi/8 || angle >= 7*math.Pi/8:
				d = 0
			case angle < 3*math.Pi/8:
				d = 1
			case angle < 5*math.Pi/8:
				d = 2
			default:
				d = 3
			}
			dir[y*img.W+x] = d
		}
	}
	return mag, dir
}

// nonMaxSuppress zeroes magnitudes that are not local maxima along their
// gradient direction.
func nonMaxSuppress(mag *Gray, dir []uint8) *Gray {
	out := NewGray(mag.W, mag.H)
	for y := 0; y < mag.H; y++ {
		for x := 0; x < mag.W; x++ {
			m := mag.Pix[y*mag.W+x]
			var a, b float64
			switch dir[y*mag.W+x] {
			case 0: // gradient E-W → compare horizontal neighbours
				a, b = mag.At(x-1, y), mag.At(x+1, y)
			case 1:
				a, b = mag.At(x+1, y-1), mag.At(x-1, y+1)
			case 2:
				a, b = mag.At(x, y-1), mag.At(x, y+1)
			default:
				a, b = mag.At(x-1, y-1), mag.At(x+1, y+1)
			}
			if m >= a && m >= b {
				out.Pix[y*mag.W+x] = m
			}
		}
	}
	return out
}

// hysteresis links weak edges (≥ low) to strong seeds (≥ high) with an
// explicit stack-based flood fill over 8-connectivity.
func hysteresis(mag *Gray, low, high float64) *Binary {
	out := NewBinary(mag.W, mag.H)
	stack := make([][2]int, 0, 256)
	for y := 0; y < mag.H; y++ {
		for x := 0; x < mag.W; x++ {
			if mag.Pix[y*mag.W+x] < high || out.Pix[y*mag.W+x] {
				continue
			}
			out.Pix[y*mag.W+x] = true
			stack = append(stack[:0], [2]int{x, y})
			for len(stack) > 0 {
				p := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				for dy := -1; dy <= 1; dy++ {
					for dx := -1; dx <= 1; dx++ {
						nx, ny := p[0]+dx, p[1]+dy
						if nx < 0 || ny < 0 || nx >= mag.W || ny >= mag.H {
							continue
						}
						i := ny*mag.W + nx
						if !out.Pix[i] && mag.Pix[i] >= low {
							out.Pix[i] = true
							stack = append(stack, [2]int{nx, ny})
						}
					}
				}
			}
		}
	}
	return out
}
