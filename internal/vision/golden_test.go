package vision

import (
	"hash/fnv"
	"testing"

	"p3/internal/dataset"
)

// Golden-output pins for the vision primitives over the deterministic
// synthetic corpus. Every generator in internal/dataset is a pure
// function of its seed, so the exact edge maps and luma planes are
// stable artifacts; these tests freeze them. A legitimate algorithm
// change that shifts a fingerprint should update the constant — the
// point is that no change does so silently.

// fingerprintBinary hashes an edge map: FNV-1a over the packed bits.
func fingerprintBinary(b *Binary) uint64 {
	h := fnv.New64a()
	var acc byte
	var n uint
	for _, v := range b.Pix {
		acc <<= 1
		if v {
			acc |= 1
		}
		if n++; n == 8 {
			h.Write([]byte{acc})
			acc, n = 0, 0
		}
	}
	h.Write([]byte{acc})
	return h.Sum64()
}

// fingerprintGray hashes a luma plane quantized to 8 bits.
func fingerprintGray(g *Gray) uint64 {
	h := fnv.New64a()
	for _, v := range g.Pix {
		h.Write([]byte{uint8(clamp255(v))})
	}
	return h.Sum64()
}

func TestLumaGoldenOnNaturalCorpus(t *testing.T) {
	for _, tc := range []struct {
		seed int64
		want uint64
	}{
		{1, 0xa5005694c7c71a65},
		{2, 0xf074ff68808d4e9c},
		{3, 0x7f54bcef2984d31f},
	} {
		g := Luma(dataset.Natural(tc.seed, 128, 96))
		if g.W != 128 || g.H != 96 {
			t.Fatalf("seed %d: luma %dx%d, want 128x96", tc.seed, g.W, g.H)
		}
		if got := fingerprintGray(g); got != tc.want {
			t.Errorf("seed %d: luma fingerprint %#x, want %#x", tc.seed, got, tc.want)
		}
	}
}

func TestCannyGoldenOnNaturalCorpus(t *testing.T) {
	for _, tc := range []struct {
		seed      int64
		wantEdges int
		wantPrint uint64
	}{
		{1, 142, 0xa96e973e6574997b},
		{2, 0, 0xd54c873ccb389fdf},
		{3, 48, 0xbc35808c0e48fb9c},
	} {
		edges := Canny{}.Detect(Luma(dataset.Natural(tc.seed, 128, 96)))
		if got := edges.Count(); got != tc.wantEdges {
			t.Errorf("seed %d: %d edge pixels, want %d", tc.seed, got, tc.wantEdges)
		}
		if got := fingerprintBinary(edges); got != tc.wantPrint {
			t.Errorf("seed %d: edge map fingerprint %#x, want %#x", tc.seed, got, tc.wantPrint)
		}
	}
}
