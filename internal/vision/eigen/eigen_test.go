package eigen

import (
	"math"
	"math/rand"
	"testing"

	"p3/internal/dataset"
	"p3/internal/vision"
)

const (
	faceW = 64
	faceH = 80
)

// corpus returns aligned grayscale faces under controlled FERET-like
// conditions: perSubject images for each of n subjects.
func corpus(n, perSubject int, seed int64) (subjects []int, faces []*vision.Gray) {
	fc := dataset.FERETCorpus(n, perSubject, faceW, faceH, seed)
	for _, f := range fc {
		subjects = append(subjects, f.Subject)
		faces = append(faces, vision.Luma(f.Img))
	}
	return subjects, faces
}

func TestJacobiKnownMatrix(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 3 and 1.
	vals, vecs, err := jacobiEigen([][]float64{{2, 1}, {1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	got := []float64{vals[0], vals[1]}
	if got[0] < got[1] {
		got[0], got[1] = got[1], got[0]
	}
	if math.Abs(got[0]-3) > 1e-9 || math.Abs(got[1]-1) > 1e-9 {
		t.Errorf("eigenvalues %v, want [3 1]", got)
	}
	// Eigenvectors must be orthonormal.
	dot := vecs[0][0]*vecs[0][1] + vecs[1][0]*vecs[1][1]
	if math.Abs(dot) > 1e-9 {
		t.Errorf("eigenvectors not orthogonal: %v", dot)
	}
}

func TestJacobiReconstruction(t *testing.T) {
	// A = V Λ Vᵀ must reproduce the input for a random symmetric matrix.
	rng := rand.New(rand.NewSource(1))
	n := 8
	a := make([][]float64, n)
	for i := range a {
		a[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := rng.Float64()*4 - 2
			a[i][j] = v
			a[j][i] = v
		}
	}
	vals, vecs, err := jacobiEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for k := 0; k < n; k++ {
				s += vecs[i][k] * vals[k] * vecs[j][k]
			}
			if math.Abs(s-a[i][j]) > 1e-8 {
				t.Fatalf("A[%d][%d]: reconstructed %v, want %v", i, j, s, a[i][j])
			}
		}
	}
}

func TestTrainBasisOrthonormal(t *testing.T) {
	_, faces := corpus(10, 3, 7)
	m, err := Train(faces, 12)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Basis) < 5 {
		t.Fatalf("only %d eigenfaces", len(m.Basis))
	}
	for i := range m.Basis {
		for j := i; j < len(m.Basis); j++ {
			var dot float64
			for d := range m.Basis[i] {
				dot += m.Basis[i][d] * m.Basis[j][d]
			}
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(dot-want) > 1e-6 {
				t.Fatalf("basis[%d]·basis[%d] = %v, want %v", i, j, dot, want)
			}
		}
	}
	// Eigenvalues descending.
	for i := 1; i < len(m.Eigenvalues); i++ {
		if m.Eigenvalues[i] > m.Eigenvalues[i-1]+1e-9 {
			t.Fatal("eigenvalues not sorted descending")
		}
	}
}

func TestTrainErrors(t *testing.T) {
	if _, err := Train(nil, 5); err == nil {
		t.Error("empty training set accepted")
	}
	a := vision.NewGray(4, 4)
	b := vision.NewGray(5, 5)
	if _, err := Train([]*vision.Gray{a, b}, 1); err == nil {
		t.Error("mismatched sizes accepted")
	}
	flat1, flat2 := vision.NewGray(4, 4), vision.NewGray(4, 4)
	if _, err := Train([]*vision.Gray{flat1, flat2}, 1); err == nil {
		t.Error("zero-variance set accepted")
	}
}

// TestRecognitionAccuracy reproduces the paper's Normal-Normal baseline:
// training and matching on clean faces should recognize most probes at
// rank 1 and nearly all within a few ranks (the paper reports >80% rank-1
// on FERET/FAFB).
func TestRecognitionAccuracy(t *testing.T) {
	const nSubj, perSubj = 20, 4
	subjects, faces := corpus(nSubj, perSubj, 3)
	// Split: image 0 of each subject → gallery; images 1..3 → probes.
	var galS, prbS []int
	var galF, prbF []*vision.Gray
	for i := range faces {
		if i%perSubj == 0 {
			galS = append(galS, subjects[i])
			galF = append(galF, faces[i])
		} else {
			prbS = append(prbS, subjects[i])
			prbF = append(prbF, faces[i])
		}
	}
	m, err := Train(galF, 19)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := NewRecognizer(m, galS, galF)
	if err != nil {
		t.Fatal(err)
	}
	for _, dist := range []Distance{Euclidean, MahCosine} {
		cmc, err := rec.CMC(prbS, prbF, dist, nSubj)
		if err != nil {
			t.Fatal(err)
		}
		if cmc[0] < 0.6 {
			t.Errorf("%v: rank-1 rate %.2f, want >= 0.6", dist, cmc[0])
		}
		if cmc[nSubj-1] < 0.999 {
			t.Errorf("%v: rank-%d rate %.2f, want 1.0", dist, nSubj, cmc[nSubj-1])
		}
		// Monotone non-decreasing.
		for i := 1; i < len(cmc); i++ {
			if cmc[i] < cmc[i-1] {
				t.Fatalf("%v: CMC not monotone at %d", dist, i)
			}
		}
	}
}

func TestRankSubjectsSelfMatch(t *testing.T) {
	subjects, faces := corpus(8, 2, 11)
	m, err := Train(faces, 10)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := NewRecognizer(m, subjects, faces)
	if err != nil {
		t.Fatal(err)
	}
	// A gallery image probed against the gallery must match its own subject
	// at rank 1 (distance 0 to itself).
	for i := 0; i < len(faces); i += 2 {
		ranked, err := rec.RankSubjects(faces[i], Euclidean)
		if err != nil {
			t.Fatal(err)
		}
		if ranked[0] != subjects[i] {
			t.Errorf("probe %d: rank-1 = subject %d, want %d", i, ranked[0], subjects[i])
		}
	}
}

func TestCMCErrors(t *testing.T) {
	subjects, faces := corpus(4, 2, 13)
	m, _ := Train(faces, 5)
	rec, _ := NewRecognizer(m, subjects, faces)
	if _, err := rec.CMC([]int{1}, nil, Euclidean, 4); err == nil {
		t.Error("mismatched probe sets accepted")
	}
	wrong := vision.NewGray(3, 3)
	if _, err := rec.RankSubjects(wrong, Euclidean); err == nil {
		t.Error("wrong probe size accepted")
	}
}

func TestDistanceStrings(t *testing.T) {
	if Euclidean.String() != "Euclidean" || MahCosine.String() != "MahCosine" {
		t.Error("distance names wrong")
	}
}
