// Package eigen implements Eigenfaces face recognition (Turk & Pentland
// 1991) with the evaluation methodology of the FERET protocol (Phillips et
// al.): PCA over a training set of aligned faces via the Gram-matrix trick
// and a Jacobi eigensolver, projection of gallery and probe images into face
// space, Euclidean and Mahalanobis-cosine distances (the two metrics the
// paper evaluates, §5.2.2), and cumulative-match-characteristic curves
// (Fig. 8d).
package eigen

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"p3/internal/vision"
)

// Model is a trained PCA face space.
type Model struct {
	W, H        int
	Mean        []float64   // W*H mean face
	Basis       [][]float64 // k unit-norm eigenfaces, each W*H
	Eigenvalues []float64   // corresponding variances, descending
}

// Train computes a face space of up to k components from aligned training
// faces (all the same size). It uses the Gram-matrix trick: eigenvectors of
// the n×n inner-product matrix map to eigenfaces, avoiding a (W·H)² problem.
func Train(images []*vision.Gray, k int) (*Model, error) {
	n := len(images)
	if n < 2 {
		return nil, errors.New("eigen: need at least 2 training images")
	}
	w, h := images[0].W, images[0].H
	dim := w * h
	for _, g := range images {
		if g.W != w || g.H != h {
			return nil, fmt.Errorf("eigen: image size %dx%d differs from %dx%d", g.W, g.H, w, h)
		}
	}
	if k <= 0 || k > n-1 {
		k = n - 1
	}

	mean := make([]float64, dim)
	for _, g := range images {
		for i, v := range g.Pix {
			mean[i] += v
		}
	}
	for i := range mean {
		mean[i] /= float64(n)
	}
	// Centered data matrix A (n × dim), kept row-wise.
	A := make([][]float64, n)
	for r, g := range images {
		row := make([]float64, dim)
		for i, v := range g.Pix {
			row[i] = v - mean[i]
		}
		A[r] = row
	}
	// Gram matrix G = A·Aᵀ / n (n × n, symmetric).
	G := make([][]float64, n)
	for i := range G {
		G[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			var s float64
			for d := 0; d < dim; d++ {
				s += A[i][d] * A[j][d]
			}
			s /= float64(n)
			G[i][j] = s
			G[j][i] = s
		}
	}
	vals, vecs, err := jacobiEigen(G)
	if err != nil {
		return nil, err
	}
	// Sort eigenpairs by descending eigenvalue.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return vals[idx[a]] > vals[idx[b]] })

	m := &Model{W: w, H: h, Mean: mean}
	for rank := 0; rank < k; rank++ {
		ei := idx[rank]
		if vals[ei] <= 1e-9 {
			break // rank exhausted
		}
		// Eigenface u = Aᵀ·v, then normalize.
		u := make([]float64, dim)
		for r := 0; r < n; r++ {
			c := vecs[r][ei]
			if c == 0 {
				continue
			}
			row := A[r]
			for d := 0; d < dim; d++ {
				u[d] += c * row[d]
			}
		}
		var norm float64
		for _, v := range u {
			norm += v * v
		}
		norm = math.Sqrt(norm)
		if norm == 0 {
			continue
		}
		for d := range u {
			u[d] /= norm
		}
		m.Basis = append(m.Basis, u)
		m.Eigenvalues = append(m.Eigenvalues, vals[ei])
	}
	if len(m.Basis) == 0 {
		return nil, errors.New("eigen: degenerate training set (no variance)")
	}
	return m, nil
}

// Project maps a face image into face-space coordinates.
func (m *Model) Project(g *vision.Gray) ([]float64, error) {
	if g.W != m.W || g.H != m.H {
		return nil, fmt.Errorf("eigen: probe size %dx%d, model %dx%d", g.W, g.H, m.W, m.H)
	}
	coords := make([]float64, len(m.Basis))
	for bi, u := range m.Basis {
		var s float64
		for d, v := range g.Pix {
			s += (v - m.Mean[d]) * u[d]
		}
		coords[bi] = s
	}
	return coords, nil
}

// jacobiEigen diagonalizes a symmetric matrix with the cyclic Jacobi method,
// returning eigenvalues and the matrix of column eigenvectors.
func jacobiEigen(a [][]float64) (vals []float64, vecs [][]float64, err error) {
	n := len(a)
	// Work on a copy.
	m := make([][]float64, n)
	for i := range m {
		m[i] = append([]float64(nil), a[i]...)
		if len(a[i]) != n {
			return nil, nil, errors.New("eigen: non-square matrix")
		}
	}
	v := make([][]float64, n)
	for i := range v {
		v[i] = make([]float64, n)
		v[i][i] = 1
	}
	for sweep := 0; sweep < 100; sweep++ {
		var off float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += m[i][j] * m[i][j]
			}
		}
		if off < 1e-18 {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				if math.Abs(m[p][q]) < 1e-30 {
					continue
				}
				theta := (m[q][q] - m[p][p]) / (2 * m[p][q])
				t := 1 / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				if theta < 0 {
					t = -t
				}
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				for i := 0; i < n; i++ {
					mip, miq := m[i][p], m[i][q]
					m[i][p] = c*mip - s*miq
					m[i][q] = s*mip + c*miq
				}
				for i := 0; i < n; i++ {
					mpi, mqi := m[p][i], m[q][i]
					m[p][i] = c*mpi - s*mqi
					m[q][i] = s*mpi + c*mqi
				}
				for i := 0; i < n; i++ {
					vip, viq := v[i][p], v[i][q]
					v[i][p] = c*vip - s*viq
					v[i][q] = s*vip + c*viq
				}
			}
		}
	}
	vals = make([]float64, n)
	for i := 0; i < n; i++ {
		vals[i] = m[i][i]
	}
	return vals, v, nil
}
