package eigen

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"p3/internal/vision"
)

// Distance selects the face-space metric.
type Distance int

// The two metrics the paper evaluates (§5.2.2): plain Euclidean distance
// and the Mahalanobis-cosine distance of the CSU evaluation system, which
// whitens each axis by its standard deviation before measuring the angle.
const (
	Euclidean Distance = iota
	MahCosine
)

// String names the metric.
func (d Distance) String() string {
	switch d {
	case Euclidean:
		return "Euclidean"
	case MahCosine:
		return "MahCosine"
	}
	return fmt.Sprintf("Distance(%d)", int(d))
}

// galleryEntry is one enrolled face.
type galleryEntry struct {
	subject  int
	coords   []float64
	whitened []float64
}

// Recognizer matches probes against an enrolled gallery.
type Recognizer struct {
	model   *Model
	gallery []galleryEntry
	invStd  []float64 // 1/√λ per axis for whitening
}

// NewRecognizer enrolls gallery faces (label, image) into a face space.
func NewRecognizer(m *Model, subjects []int, faces []*vision.Gray) (*Recognizer, error) {
	if len(subjects) != len(faces) || len(faces) == 0 {
		return nil, errors.New("eigen: gallery labels and faces must align and be non-empty")
	}
	r := &Recognizer{model: m, invStd: make([]float64, len(m.Eigenvalues))}
	for i, ev := range m.Eigenvalues {
		if ev > 0 {
			r.invStd[i] = 1 / math.Sqrt(ev)
		}
	}
	for i, g := range faces {
		coords, err := m.Project(g)
		if err != nil {
			return nil, err
		}
		r.gallery = append(r.gallery, galleryEntry{
			subject:  subjects[i],
			coords:   coords,
			whitened: r.whiten(coords),
		})
	}
	return r, nil
}

func (r *Recognizer) whiten(coords []float64) []float64 {
	out := make([]float64, len(coords))
	for i, c := range coords {
		out[i] = c * r.invStd[i]
	}
	return out
}

// RankSubjects returns subject labels ordered from best to worst match for
// the probe (each subject appears once, scored by its best gallery image).
func (r *Recognizer) RankSubjects(probe *vision.Gray, dist Distance) ([]int, error) {
	coords, err := r.model.Project(probe)
	if err != nil {
		return nil, err
	}
	wcoords := r.whiten(coords)
	best := map[int]float64{}
	for _, e := range r.gallery {
		var d float64
		switch dist {
		case MahCosine:
			d = mahCosineDist(wcoords, e.whitened)
		default:
			d = euclideanDist(coords, e.coords)
		}
		if cur, ok := best[e.subject]; !ok || d < cur {
			best[e.subject] = d
		}
	}
	subjects := make([]int, 0, len(best))
	for s := range best {
		subjects = append(subjects, s)
	}
	sort.Slice(subjects, func(a, b int) bool {
		da, db := best[subjects[a]], best[subjects[b]]
		if da != db {
			return da < db
		}
		return subjects[a] < subjects[b]
	})
	return subjects, nil
}

func euclideanDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// mahCosineDist is the negative cosine similarity in whitened space; smaller
// means more similar. Ranges [-1, 1].
func mahCosineDist(a, b []float64) float64 {
	var dot, na, nb float64
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 || nb == 0 {
		return 1
	}
	return -dot / math.Sqrt(na*nb)
}

// CMC computes the cumulative match characteristic: point r (1-based rank)
// is the fraction of probes whose true subject appears within the top r
// ranked subjects. This is the Fig. 8d y-axis.
func (r *Recognizer) CMC(probeSubjects []int, probes []*vision.Gray, dist Distance, maxRank int) ([]float64, error) {
	if len(probeSubjects) != len(probes) || len(probes) == 0 {
		return nil, errors.New("eigen: probe labels and faces must align and be non-empty")
	}
	counts := make([]int, maxRank)
	for i, p := range probes {
		ranked, err := r.RankSubjects(p, dist)
		if err != nil {
			return nil, err
		}
		for rank, s := range ranked {
			if s == probeSubjects[i] {
				if rank < maxRank {
					counts[rank]++
				}
				break
			}
		}
	}
	cmc := make([]float64, maxRank)
	cum := 0
	for i := 0; i < maxRank; i++ {
		cum += counts[i]
		cmc[i] = float64(cum) / float64(len(probes))
	}
	return cmc, nil
}
