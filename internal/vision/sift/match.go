package sift

import "math"

// descDist returns the Euclidean distance between two descriptors.
func descDist(a, b *[128]float64) float64 {
	var sum float64
	for i := range a {
		d := a[i] - b[i]
		sum += d * d
	}
	return math.Sqrt(sum)
}

// Match applies Lowe's nearest-neighbour ratio test: a keypoint in a matches
// its nearest descriptor in b when the nearest distance is below ratio times
// the second-nearest. ratio 0 selects Lowe's 0.6 (the setting the paper's
// SIFT attack uses; it notes 0.8 gives similar results). Returns index pairs
// (ia, ib).
func Match(a, b []Keypoint, ratio float64) [][2]int {
	if ratio == 0 {
		ratio = 0.6
	}
	var out [][2]int
	if len(b) < 2 {
		return out
	}
	for ia := range a {
		best, second := math.Inf(1), math.Inf(1)
		bestJ := -1
		for ib := range b {
			d := descDist(&a[ia].Descriptor, &b[ib].Descriptor)
			if d < best {
				second = best
				best = d
				bestJ = ib
			} else if d < second {
				second = d
			}
		}
		if bestJ >= 0 && best < ratio*second {
			out = append(out, [2]int{ia, bestJ})
		}
	}
	return out
}

// CountClose counts keypoints in a whose nearest descriptor in b lies within
// maxDist — the paper's "features detected in the public part which are less
// than a distance d (in feature space) from the nearest feature in the
// original image" measurement (§5.2.2).
func CountClose(a, b []Keypoint, maxDist float64) int {
	n := 0
	for ia := range a {
		for ib := range b {
			if descDist(&a[ia].Descriptor, &b[ib].Descriptor) <= maxDist {
				n++
				break
			}
		}
	}
	return n
}
