package sift

import (
	"math"
	"math/rand"
	"testing"

	"p3/internal/dataset"
	"p3/internal/vision"
)

func natural(seed int64, w, h int) *vision.Gray {
	return vision.Luma(dataset.Natural(seed, w, h))
}

func TestDetectFindsFeaturesOnStructuredImage(t *testing.T) {
	g := natural(1, 128, 128)
	kps := Detect(g, nil)
	if len(kps) < 10 {
		t.Fatalf("only %d keypoints on a structured image", len(kps))
	}
	for _, kp := range kps {
		if kp.X < 0 || kp.Y < 0 || kp.X >= 128 || kp.Y >= 128 {
			t.Fatalf("keypoint outside image: (%v, %v)", kp.X, kp.Y)
		}
		if kp.Scale <= 0 {
			t.Fatal("non-positive scale")
		}
		var norm float64
		for _, v := range kp.Descriptor {
			if v < 0 {
				t.Fatal("negative descriptor entry")
			}
			norm += v * v
		}
		if math.Abs(norm-1) > 1e-6 && norm != 0 {
			t.Fatalf("descriptor norm² = %v, want 1", norm)
		}
	}
}

func TestDetectFlatImageNoFeatures(t *testing.T) {
	g := vision.NewGray(64, 64)
	for i := range g.Pix {
		g.Pix[i] = 77
	}
	if kps := Detect(g, nil); len(kps) != 0 {
		t.Errorf("%d keypoints on a flat image", len(kps))
	}
}

func TestDetectTinyImage(t *testing.T) {
	if kps := Detect(vision.NewGray(8, 8), nil); kps != nil {
		t.Error("tiny image should yield nil")
	}
}

func TestBlobDetectedAtRightLocation(t *testing.T) {
	// A single Gaussian blob must produce a keypoint near its center.
	g := vision.NewGray(64, 64)
	cx, cy, s := 32.0, 32.0, 4.0
	for y := 0; y < 64; y++ {
		for x := 0; x < 64; x++ {
			d2 := (float64(x)-cx)*(float64(x)-cx) + (float64(y)-cy)*(float64(y)-cy)
			g.Pix[y*64+x] = 30 + 200*math.Exp(-d2/(2*s*s))
		}
	}
	kps := Detect(g, nil)
	if len(kps) == 0 {
		t.Fatal("no keypoints on a blob")
	}
	bestDist := math.Inf(1)
	for _, kp := range kps {
		d := math.Hypot(kp.X-cx, kp.Y-cy)
		if d < bestDist {
			bestDist = d
		}
	}
	if bestDist > 3 {
		t.Errorf("nearest keypoint %.1fpx from blob center", bestDist)
	}
}

// TestMatchSelfIdentity: matching an image against itself must pair most
// keypoints with themselves at distance ~0.
func TestMatchSelfIdentity(t *testing.T) {
	kps := Detect(natural(2, 96, 96), nil)
	if len(kps) < 5 {
		t.Skip("too few keypoints")
	}
	matches := Match(kps, kps, 0.9) // self-match needs a loose ratio: 2nd-NN is a real feature
	selfPairs := 0
	for _, m := range matches {
		if m[0] == m[1] {
			selfPairs++
		}
	}
	if selfPairs < len(kps)/2 {
		t.Errorf("only %d/%d keypoints self-matched", selfPairs, len(kps))
	}
}

// TestMatchTranslationInvariance: the same scene shifted slightly should
// still produce ratio-test matches with consistent displacement.
func TestMatchTranslationInvariance(t *testing.T) {
	big := natural(3, 160, 160)
	a := cropG(big, 0, 0, 128, 128)
	b := cropG(big, 8, 8, 128, 128)
	ka, kb := Detect(a, nil), Detect(b, nil)
	if len(ka) < 5 || len(kb) < 5 {
		t.Skip("too few keypoints")
	}
	matches := Match(ka, kb, 0.7)
	if len(matches) < 3 {
		t.Fatalf("only %d matches across an 8px shift", len(matches))
	}
	consistent := 0
	for _, m := range matches {
		dx := ka[m[0]].X - kb[m[1]].X
		dy := ka[m[0]].Y - kb[m[1]].Y
		if math.Abs(dx-8) < 2.5 && math.Abs(dy-8) < 2.5 {
			consistent++
		}
	}
	if consistent*2 < len(matches) {
		t.Errorf("only %d/%d matches consistent with the shift", consistent, len(matches))
	}
}

// TestMatchUnrelatedImagesFewMatches: the ratio test must reject most pairs
// between unrelated scenes.
func TestMatchUnrelatedImagesFewMatches(t *testing.T) {
	ka := Detect(natural(4, 96, 96), nil)
	kb := Detect(natural(999, 96, 96), nil)
	if len(ka) == 0 || len(kb) == 0 {
		t.Skip("no keypoints")
	}
	matches := Match(ka, kb, 0.6)
	if len(matches) > len(ka)/3 {
		t.Errorf("%d/%d spurious matches between unrelated images", len(matches), len(ka))
	}
}

func TestCountClose(t *testing.T) {
	kps := Detect(natural(5, 96, 96), nil)
	if len(kps) == 0 {
		t.Skip("no keypoints")
	}
	if n := CountClose(kps, kps, 1e-9); n != len(kps) {
		t.Errorf("self CountClose = %d, want %d", n, len(kps))
	}
	if n := CountClose(kps, nil, 0.6); n != 0 {
		t.Errorf("CountClose vs empty = %d", n)
	}
}

func TestMatchEmptyInputs(t *testing.T) {
	if m := Match(nil, nil, 0); len(m) != 0 {
		t.Error("nil inputs must give no matches")
	}
	one := make([]Keypoint, 1)
	if m := Match(one, one, 0); len(m) != 0 {
		t.Error("single-element b has no 2nd neighbour; must give no matches")
	}
}

func cropG(g *vision.Gray, x, y, w, h int) *vision.Gray {
	out := vision.NewGray(w, h)
	for yy := 0; yy < h; yy++ {
		copy(out.Pix[yy*w:yy*w+w], g.Pix[(y+yy)*g.W+x:(y+yy)*g.W+x+w])
	}
	return out
}

func TestDeterminism(t *testing.T) {
	a := Detect(natural(6, 96, 96), nil)
	b := Detect(natural(6, 96, 96), nil)
	if len(a) != len(b) {
		t.Fatalf("nondeterministic keypoint count %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("nondeterministic keypoints")
		}
	}
	_ = rand.Int // keep math/rand imported for future fuzz additions
}
