// Package sift implements the Scale-Invariant Feature Transform (Lowe,
// IJCV 2004): Gaussian scale-space pyramid, difference-of-Gaussian extrema
// with subpixel refinement and edge rejection, orientation assignment, and
// the 4×4×8 gradient descriptor, plus Lowe's nearest-neighbour ratio-test
// matcher. It is the Fig. 8c attack: the paper measures how many SIFT
// features survive in a P3 public part and how many of them match features
// of the original image.
package sift

import (
	"math"

	"p3/internal/vision"
)

// Options tunes the detector; zero values select Lowe's defaults.
type Options struct {
	ScalesPerOctave   int     // intervals per octave (default 3)
	Sigma             float64 // base blur of octave 0 (default 1.6)
	ContrastThreshold float64 // DoG magnitude cut (default 0.04, image in [0,1])
	EdgeThreshold     float64 // principal-curvature ratio cut (default 10)
	MaxOctaves        int     // 0 = as many as fit down to 16px
	NoUpsample        bool    // skip the initial 2× upsampling (the −1 octave)
}

func (o *Options) defaults() {
	if o.ScalesPerOctave == 0 {
		o.ScalesPerOctave = 3
	}
	if o.Sigma == 0 {
		o.Sigma = 1.6
	}
	if o.ContrastThreshold == 0 {
		o.ContrastThreshold = 0.04
	}
	if o.EdgeThreshold == 0 {
		o.EdgeThreshold = 10
	}
}

// Keypoint is a detected, oriented, described feature.
type Keypoint struct {
	X, Y        float64 // coordinates in the input image
	Scale       float64 // σ of the keypoint
	Orientation float64 // radians
	Response    float64 // |DoG| at the refined extremum
	Descriptor  [128]float64
}

// Detect extracts SIFT keypoints with descriptors from a grayscale image.
func Detect(g *vision.Gray, opts *Options) []Keypoint {
	var o Options
	if opts != nil {
		o = *opts
	}
	o.defaults()
	if g.W < 16 || g.H < 16 {
		return nil
	}

	// Normalize to [0, 1].
	base := &floatImg{w: g.W, h: g.H, pix: make([]float64, len(g.Pix))}
	for i, v := range g.Pix {
		base.pix[i] = v / 255
	}
	// Lowe's implementation doubles the input first (the "−1 octave"),
	// roughly quadrupling the number of detectable features. Coordinates
	// and scales are mapped back through coordMul at the end.
	coordMul := 1.0
	capturedSigma := 0.5 // assumed camera blur of the input
	if !o.NoUpsample {
		base = upsample2x(base)
		coordMul = 0.5
		capturedSigma = 1.0
	}
	if d := o.Sigma*o.Sigma - capturedSigma*capturedSigma; d > 0 {
		base = blur(base, math.Sqrt(d))
	}

	octaves := 0
	for w, h := base.w, base.h; w >= 16 && h >= 16; w, h = w/2, h/2 {
		octaves++
	}
	if o.MaxOctaves > 0 && octaves > o.MaxOctaves {
		octaves = o.MaxOctaves
	}

	s := o.ScalesPerOctave
	k := math.Pow(2, 1/float64(s))
	var kps []Keypoint
	oct := base
	for oi := 0; oi < octaves; oi++ {
		// Gaussian stack: s+3 images, incremental blurs.
		gauss := make([]*floatImg, s+3)
		gauss[0] = oct
		sigPrev := o.Sigma
		for i := 1; i < s+3; i++ {
			sigTotal := sigPrev * k
			delta := math.Sqrt(sigTotal*sigTotal - sigPrev*sigPrev)
			gauss[i] = blur(gauss[i-1], delta)
			sigPrev = sigTotal
		}
		// DoG stack: s+2 images.
		dog := make([]*floatImg, s+2)
		for i := range dog {
			dog[i] = subImg(gauss[i+1], gauss[i])
		}
		kps = append(kps, findExtrema(dog, gauss, oi, s, &o)...)
		// Next octave: downsample the 2σ image (index s).
		oct = downsample(gauss[s])
	}
	if coordMul != 1 {
		for i := range kps {
			kps[i].X *= coordMul
			kps[i].Y *= coordMul
			kps[i].Scale *= coordMul
		}
	}
	return kps
}

// upsample2x doubles an image with bilinear interpolation.
func upsample2x(src *floatImg) *floatImg {
	w, h := src.w*2, src.h*2
	out := &floatImg{w: w, h: h, pix: make([]float64, w*h)}
	for y := 0; y < h; y++ {
		fy := float64(y) / 2
		y0 := int(fy)
		ty := fy - float64(y0)
		for x := 0; x < w; x++ {
			fx := float64(x) / 2
			x0 := int(fx)
			tx := fx - float64(x0)
			v := (1-tx)*(1-ty)*src.at(x0, y0) +
				tx*(1-ty)*src.at(x0+1, y0) +
				(1-tx)*ty*src.at(x0, y0+1) +
				tx*ty*src.at(x0+1, y0+1)
			out.pix[y*w+x] = v
		}
	}
	return out
}

// floatImg is a minimal float image for pyramid levels.
type floatImg struct {
	w, h int
	pix  []float64
}

func (f *floatImg) at(x, y int) float64 {
	if x < 0 {
		x = 0
	} else if x >= f.w {
		x = f.w - 1
	}
	if y < 0 {
		y = 0
	} else if y >= f.h {
		y = f.h - 1
	}
	return f.pix[y*f.w+x]
}

func blur(src *floatImg, sigma float64) *floatImg {
	if sigma <= 0 {
		out := &floatImg{w: src.w, h: src.h, pix: append([]float64(nil), src.pix...)}
		return out
	}
	r := int(math.Ceil(3 * sigma))
	kern := make([]float64, 2*r+1)
	var sum float64
	for i := -r; i <= r; i++ {
		v := math.Exp(-float64(i*i) / (2 * sigma * sigma))
		kern[i+r] = v
		sum += v
	}
	for i := range kern {
		kern[i] /= sum
	}
	tmp := &floatImg{w: src.w, h: src.h, pix: make([]float64, len(src.pix))}
	for y := 0; y < src.h; y++ {
		for x := 0; x < src.w; x++ {
			var acc float64
			for i, kv := range kern {
				acc += kv * src.at(x+i-r, y)
			}
			tmp.pix[y*src.w+x] = acc
		}
	}
	out := &floatImg{w: src.w, h: src.h, pix: make([]float64, len(src.pix))}
	for y := 0; y < src.h; y++ {
		for x := 0; x < src.w; x++ {
			var acc float64
			for i, kv := range kern {
				acc += kv * tmp.at(x, y+i-r)
			}
			out.pix[y*src.w+x] = acc
		}
	}
	return out
}

func subImg(a, b *floatImg) *floatImg {
	out := &floatImg{w: a.w, h: a.h, pix: make([]float64, len(a.pix))}
	for i := range out.pix {
		out.pix[i] = a.pix[i] - b.pix[i]
	}
	return out
}

func downsample(src *floatImg) *floatImg {
	w, h := src.w/2, src.h/2
	out := &floatImg{w: w, h: h, pix: make([]float64, w*h)}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			out.pix[y*w+x] = src.pix[(2*y)*src.w+2*x]
		}
	}
	return out
}

// findExtrema locates, refines, filters, orients and describes keypoints in
// one octave.
func findExtrema(dog, gauss []*floatImg, octave, s int, o *Options) []Keypoint {
	var out []Keypoint
	prelim := 0.5 * o.ContrastThreshold / float64(s)
	edgeR := o.EdgeThreshold
	edgeLimit := (edgeR + 1) * (edgeR + 1) / edgeR
	w, h := dog[0].w, dog[0].h
	scaleMul := math.Pow(2, float64(octave))

	for li := 1; li <= s; li++ {
		d := dog[li]
		for y := 5; y < h-5; y++ {
			for x := 5; x < w-5; x++ {
				v := d.pix[y*w+x]
				if math.Abs(v) < prelim {
					continue
				}
				if !isExtremum(dog, li, x, y, v) {
					continue
				}
				kp, ok := refine(dog, li, x, y, s, o.ContrastThreshold, edgeLimit)
				if !ok {
					continue
				}
				// Orientation(s) from the Gaussian image nearest the scale.
				gl := gauss[kp.layer]
				sigma := o.Sigma * math.Pow(2, float64(kp.layer)/float64(s))
				for _, ang := range orientations(gl, kp.x, kp.y, 1.5*sigma) {
					desc := describe(gl, kp.x, kp.y, sigma, ang)
					out = append(out, Keypoint{
						X:           (float64(x) + kp.dx) * scaleMul,
						Y:           (float64(y) + kp.dy) * scaleMul,
						Scale:       sigma * scaleMul,
						Orientation: ang,
						Response:    math.Abs(kp.contrast),
						Descriptor:  desc,
					})
				}
			}
		}
	}
	return out
}

func isExtremum(dog []*floatImg, li, x, y int, v float64) bool {
	w := dog[li].w
	if v > 0 {
		for dl := -1; dl <= 1; dl++ {
			p := dog[li+dl].pix
			for dy := -1; dy <= 1; dy++ {
				for dx := -1; dx <= 1; dx++ {
					if dl == 0 && dy == 0 && dx == 0 {
						continue
					}
					if p[(y+dy)*w+x+dx] >= v {
						return false
					}
				}
			}
		}
		return true
	}
	for dl := -1; dl <= 1; dl++ {
		p := dog[li+dl].pix
		for dy := -1; dy <= 1; dy++ {
			for dx := -1; dx <= 1; dx++ {
				if dl == 0 && dy == 0 && dx == 0 {
					continue
				}
				if p[(y+dy)*w+x+dx] <= v {
					return false
				}
			}
		}
	}
	return true
}

type refined struct {
	layer    int
	x, y     int
	dx, dy   float64
	contrast float64
}

// refine fits a 3D quadratic to the DoG around the extremum (Brown & Lowe)
// and applies the contrast and edge-response tests.
func refine(dog []*floatImg, li, x, y, s int, contrastThresh, edgeLimit float64) (refined, bool) {
	w, h := dog[0].w, dog[0].h
	var ox, oy, ol float64
	for iter := 0; iter < 5; iter++ {
		d := dog[li]
		at := func(l, xx, yy int) float64 { return dog[l].pix[yy*w+xx] }
		// Gradient.
		gx := (at(li, x+1, y) - at(li, x-1, y)) / 2
		gy := (at(li, x, y+1) - at(li, x, y-1)) / 2
		gl := (at(li+1, x, y) - at(li-1, x, y)) / 2
		// Hessian.
		v := d.pix[y*w+x]
		hxx := at(li, x+1, y) + at(li, x-1, y) - 2*v
		hyy := at(li, x, y+1) + at(li, x, y-1) - 2*v
		hll := at(li+1, x, y) + at(li-1, x, y) - 2*v
		hxy := (at(li, x+1, y+1) - at(li, x-1, y+1) - at(li, x+1, y-1) + at(li, x-1, y-1)) / 4
		hxl := (at(li+1, x+1, y) - at(li+1, x-1, y) - at(li-1, x+1, y) + at(li-1, x-1, y)) / 4
		hyl := (at(li+1, x, y+1) - at(li+1, x, y-1) - at(li-1, x, y+1) + at(li-1, x, y-1)) / 4
		// Solve H·offset = −g (3×3 Cramer).
		det := hxx*(hyy*hll-hyl*hyl) - hxy*(hxy*hll-hyl*hxl) + hxl*(hxy*hyl-hyy*hxl)
		if math.Abs(det) < 1e-12 {
			return refined{}, false
		}
		ox = -(gx*(hyy*hll-hyl*hyl) - gy*(hxy*hll-hxl*hyl) + gl*(hxy*hyl-hxl*hyy)) / det
		oy = -(hxx*(gy*hll-gl*hyl) - hxy*(gx*hll-gl*hxl) + hxl*(gx*hyl-gy*hxl)) / det
		ol = -(hxx*(hyy*gl-hyl*gy) - hxy*(hxy*gl-hyl*gx) + hxl*(hxy*gy-hyy*gx)) / det

		if math.Abs(ox) < 0.5 && math.Abs(oy) < 0.5 && math.Abs(ol) < 0.5 {
			// Converged: contrast test at the refined point.
			contrast := v + 0.5*(gx*ox+gy*oy+gl*ol)
			if math.Abs(contrast) < contrastThresh/float64(s) {
				return refined{}, false
			}
			// Edge test on the 2D spatial Hessian.
			tr := hxx + hyy
			det2 := hxx*hyy - hxy*hxy
			if det2 <= 0 || tr*tr/det2 >= edgeLimit {
				return refined{}, false
			}
			return refined{layer: li, x: x, y: y, dx: ox, dy: oy, contrast: contrast}, true
		}
		x += int(math.Round(ox))
		y += int(math.Round(oy))
		li += int(math.Round(ol))
		if li < 1 || li > s || x < 5 || x >= w-5 || y < 5 || y >= h-5 {
			return refined{}, false
		}
	}
	return refined{}, false
}

// orientations builds the 36-bin gradient-orientation histogram and returns
// every peak within 80% of the maximum, with parabolic interpolation.
func orientations(g *floatImg, x, y int, sigma float64) []float64 {
	const bins = 36
	var hist [bins]float64
	radius := int(math.Round(3 * sigma))
	if radius < 1 {
		radius = 1
	}
	denom := 2 * sigma * sigma
	for dy := -radius; dy <= radius; dy++ {
		for dx := -radius; dx <= radius; dx++ {
			xx, yy := x+dx, y+dy
			if xx < 1 || yy < 1 || xx >= g.w-1 || yy >= g.h-1 {
				continue
			}
			gx := g.pix[yy*g.w+xx+1] - g.pix[yy*g.w+xx-1]
			gy := g.pix[(yy+1)*g.w+xx] - g.pix[(yy-1)*g.w+xx]
			mag := math.Hypot(gx, gy)
			ang := math.Atan2(gy, gx)
			wgt := math.Exp(-float64(dx*dx+dy*dy) / denom)
			bin := int(math.Floor((ang + math.Pi) / (2 * math.Pi) * bins))
			if bin >= bins {
				bin = bins - 1
			}
			if bin < 0 {
				bin = 0
			}
			hist[bin] += wgt * mag
		}
	}
	// Smooth twice with a [1 1 1]/3 circular kernel.
	for pass := 0; pass < 2; pass++ {
		var sm [bins]float64
		for i := 0; i < bins; i++ {
			sm[i] = (hist[(i+bins-1)%bins] + hist[i] + hist[(i+1)%bins]) / 3
		}
		hist = sm
	}
	var maxV float64
	for _, v := range hist {
		if v > maxV {
			maxV = v
		}
	}
	if maxV == 0 {
		return nil
	}
	var out []float64
	for i := 0; i < bins; i++ {
		l, r := hist[(i+bins-1)%bins], hist[(i+1)%bins]
		if hist[i] >= 0.8*maxV && hist[i] > l && hist[i] > r {
			// Parabolic peak interpolation.
			den := l - 2*hist[i] + r
			off := 0.0
			if den != 0 {
				off = 0.5 * (l - r) / den
			}
			ang := (float64(i)+0.5+off)/bins*2*math.Pi - math.Pi
			out = append(out, ang)
		}
	}
	return out
}

// describe computes the 4×4×8 descriptor around (x, y) at the given scale
// and orientation, with trilinear interpolation, normalization, 0.2
// clipping and renormalization.
func describe(g *floatImg, x, y int, sigma, angle float64) [128]float64 {
	const (
		d    = 4 // spatial bins per side
		nOri = 8
	)
	var desc [128]float64
	histWidth := 3 * sigma
	radius := int(math.Round(histWidth * math.Sqrt2 * (d + 1) / 2))
	cosA, sinA := math.Cos(angle), math.Sin(angle)
	denom := 0.5 * float64(d) * float64(d)

	for dy := -radius; dy <= radius; dy++ {
		for dx := -radius; dx <= radius; dx++ {
			// Rotate into the keypoint frame.
			rx := (cosA*float64(dx) + sinA*float64(dy)) / histWidth
			ry := (-sinA*float64(dx) + cosA*float64(dy)) / histWidth
			bx := rx + d/2 - 0.5
			by := ry + d/2 - 0.5
			if bx <= -1 || bx >= d || by <= -1 || by >= d {
				continue
			}
			xx, yy := x+dx, y+dy
			if xx < 1 || yy < 1 || xx >= g.w-1 || yy >= g.h-1 {
				continue
			}
			gx := g.pix[yy*g.w+xx+1] - g.pix[yy*g.w+xx-1]
			gy := g.pix[(yy+1)*g.w+xx] - g.pix[(yy-1)*g.w+xx]
			mag := math.Hypot(gx, gy)
			ori := math.Atan2(gy, gx) - angle
			for ori < 0 {
				ori += 2 * math.Pi
			}
			for ori >= 2*math.Pi {
				ori -= 2 * math.Pi
			}
			obin := ori / (2 * math.Pi) * nOri
			wgt := math.Exp(-(rx*rx+ry*ry)/denom) * mag

			// Trilinear soft-assignment into (bx, by, obin).
			x0, y0, o0 := int(math.Floor(bx)), int(math.Floor(by)), int(math.Floor(obin))
			fx, fy, fo := bx-float64(x0), by-float64(y0), obin-float64(o0)
			for ix := 0; ix <= 1; ix++ {
				cx := x0 + ix
				if cx < 0 || cx >= d {
					continue
				}
				wx := 1 - fx
				if ix == 1 {
					wx = fx
				}
				for iy := 0; iy <= 1; iy++ {
					cy := y0 + iy
					if cy < 0 || cy >= d {
						continue
					}
					wy := 1 - fy
					if iy == 1 {
						wy = fy
					}
					for io := 0; io <= 1; io++ {
						co := (o0 + io) % nOri
						wo := 1 - fo
						if io == 1 {
							wo = fo
						}
						desc[(cy*d+cx)*nOri+co] += wgt * wx * wy * wo
					}
				}
			}
		}
	}
	// Normalize → clip 0.2 → renormalize.
	normalize(&desc)
	for i, v := range desc {
		if v > 0.2 {
			desc[i] = 0.2
		}
	}
	normalize(&desc)
	return desc
}

func normalize(d *[128]float64) {
	var sum float64
	for _, v := range d {
		sum += v * v
	}
	if sum == 0 {
		return
	}
	inv := 1 / math.Sqrt(sum)
	for i := range d {
		d[i] *= inv
	}
}
