package sift

import (
	"math"
	"testing"

	"p3/internal/vision"
)

// FuzzDetect pins the detector's robustness contract: arbitrary pixel
// data of arbitrary (small) shape must never panic, and every keypoint
// that comes out is well-formed — finite coordinates inside the image,
// positive scale, and a descriptor that is normalized (or the zero
// vector for a degenerate gradient-free patch).
func FuzzDetect(f *testing.F) {
	f.Add([]byte{32, 32, 10, 200, 30, 250})
	f.Add([]byte{16, 16})
	f.Add([]byte{48, 20, 0, 255, 0, 255, 128})
	f.Add([]byte{3, 3, 1}) // below the 16px floor: must return nil, not panic
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		w := 1 + int(data[0])%48
		h := 1 + int(data[1])%48
		g := vision.NewGray(w, h)
		rest := data[2:]
		for i := range g.Pix {
			if len(rest) > 0 {
				g.Pix[i] = float64(rest[i%len(rest)])
			}
		}
		kps := Detect(g, &Options{NoUpsample: true}) // skip the 2× octave: fuzz throughput
		if (w < 16 || h < 16) && kps != nil {
			t.Fatalf("%dx%d image below the detector floor produced %d keypoints", w, h, len(kps))
		}
		for i, kp := range kps {
			if math.IsNaN(kp.X) || math.IsNaN(kp.Y) ||
				kp.X < -1 || kp.X > float64(w) || kp.Y < -1 || kp.Y > float64(h) {
				t.Fatalf("keypoint %d at (%g, %g) outside %dx%d", i, kp.X, kp.Y, w, h)
			}
			if !(kp.Scale > 0) || math.IsInf(kp.Scale, 0) {
				t.Fatalf("keypoint %d scale %g", i, kp.Scale)
			}
			var norm float64
			for _, v := range kp.Descriptor {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("keypoint %d descriptor holds %g", i, v)
				}
				norm += v * v
			}
			if norm != 0 && math.Abs(math.Sqrt(norm)-1) > 1e-6 {
				t.Fatalf("keypoint %d descriptor norm %g, want 1 (or 0)", i, math.Sqrt(norm))
			}
		}
	})
}
