package haar

import "math/rand"

// WindowSize is the canonical detector window; features are defined within
// a WindowSize×WindowSize frame and scaled at detection time.
const WindowSize = 24

// rect is a weighted rectangle of a Haar feature, in window coordinates.
type rect struct {
	X, Y, W, H int
	Weight     float64
}

// Feature is a weighted sum of rectangle sums — the five classic
// Viola–Jones kinds (2-rect edge h/v, 3-rect line h/v, 4-rect diagonal).
type Feature struct {
	Rects []rect
}

// Eval computes the feature over a window at (wx, wy) scaled by s,
// normalized by the window's standard deviation and area so values are
// comparable across scales and lighting.
func (f *Feature) Eval(ii *Integral, wx, wy int, s float64, invNorm float64) float64 {
	var sum float64
	for _, r := range f.Rects {
		// Scale the rectangle edges rather than (origin, size) so that
		// scaled rects never escape the scaled window: for any 0 ≤ e ≤ 24,
		// round(e·s) ≤ round(24·s) = window size.
		x0 := wx + int(float64(r.X)*s+0.5)
		y0 := wy + int(float64(r.Y)*s+0.5)
		x1 := wx + int(float64(r.X+r.W)*s+0.5)
		y1 := wy + int(float64(r.Y+r.H)*s+0.5)
		if x1 <= x0 {
			x1 = x0 + 1
		}
		if y1 <= y0 {
			y1 = y0 + 1
		}
		sum += r.Weight * ii.Sum(x0, y0, x1-x0, y1-y0)
	}
	return sum * invNorm
}

// GenerateFeatures enumerates candidate features on a coarse grid and
// subsamples n of them. The full Viola–Jones set has ~160k features; a few
// thousand suffice for a small cascade and keep training fast. Deterministic
// for a given seed.
func GenerateFeatures(n int, seed int64) []Feature {
	var all []Feature
	const step = 2
	for y := 0; y < WindowSize; y += step {
		for x := 0; x < WindowSize; x += step {
			for h := 4; y+h <= WindowSize; h += step {
				for w := 4; x+w <= WindowSize; w += step {
					// Two-rect horizontal (left vs right).
					if w%2 == 0 {
						all = append(all, Feature{Rects: []rect{
							{x, y, w / 2, h, 1}, {x + w/2, y, w / 2, h, -1},
						}})
					}
					// Two-rect vertical (top vs bottom).
					if h%2 == 0 {
						all = append(all, Feature{Rects: []rect{
							{x, y, w, h / 2, 1}, {x, y + h/2, w, h / 2, -1},
						}})
					}
					// Three-rect horizontal (dark middle band).
					if w%3 == 0 {
						all = append(all, Feature{Rects: []rect{
							{x, y, w, h, 1}, {x + w/3, y, w / 3, h, -3},
						}})
					}
					// Three-rect vertical.
					if h%3 == 0 {
						all = append(all, Feature{Rects: []rect{
							{x, y, w, h, 1}, {x, y + h/3, w, h / 3, -3},
						}})
					}
					// Four-rect checkerboard.
					if w%2 == 0 && h%2 == 0 {
						all = append(all, Feature{Rects: []rect{
							{x, y, w / 2, h / 2, 1}, {x + w/2, y + h/2, w / 2, h / 2, 1},
							{x + w/2, y, w / 2, h / 2, -1}, {x, y + h/2, w / 2, h / 2, -1},
						}})
					}
				}
			}
		}
	}
	if n >= len(all) {
		return all
	}
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })
	return all[:n]
}
