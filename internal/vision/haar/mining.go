package haar

import (
	"errors"
	"math/rand"

	"p3/internal/vision"
)

// TrainMined trains a cascade with hard-negative mining, the full
// Viola–Jones protocol: each stage's negatives are windows of the background
// pool that every earlier stage misclassifies as faces. This is what pushes
// the false-positive rate down multiplicatively stage by stage.
func TrainMined(pos []*vision.Gray, backgrounds []*vision.Gray, opts TrainOptions) (*Cascade, error) {
	opts.defaults()
	if len(pos) == 0 || len(backgrounds) == 0 {
		return nil, errors.New("haar: need positives and background images")
	}
	features := GenerateFeatures(opts.NumFeatures, opts.Seed)
	c := &Cascade{Features: features}
	rng := rand.New(rand.NewSource(opts.Seed + 1))

	evalWin := func(g *vision.Gray) []float64 {
		ii := NewIntegral(g)
		inv := 1 / (ii.WindowStdDev(0, 0, WindowSize, WindowSize) * WindowSize * WindowSize)
		vals := make([]float64, len(features))
		for fi := range features {
			vals[fi] = features[fi].Eval(ii, 0, 0, 1, inv)
		}
		return vals
	}
	posVals := make([][]float64, len(pos))
	for i, g := range pos {
		posVals[i] = evalWin(g)
	}

	const wantNeg = 1200
	// Seed negatives: random windows from the backgrounds.
	negVals := make([][]float64, 0, wantNeg)
	for len(negVals) < wantNeg {
		negVals = append(negVals, evalWin(randomWindow(rng, backgrounds)))
	}

	for _, size := range opts.StageSizes {
		stage := trainStage(features, posVals, negVals, size, opts.MinDetect)
		c.Stages = append(c.Stages, stage)

		// Mine hard negatives for the next stage: windows (any position,
		// any scale) of the backgrounds that the cascade so far accepts.
		negVals = negVals[:0]
		for _, bg := range backgrounds {
			if len(negVals) >= wantNeg {
				break
			}
			for _, r := range c.rawScan(bg, 0.1) {
				win := resizeGray(cropGray(bg, r), WindowSize, WindowSize)
				negVals = append(negVals, evalWin(win))
				if len(negVals) >= wantNeg {
					break
				}
			}
		}
		// Top up with random windows so the stage never trains on a tiny
		// or empty set.
		for len(negVals) < 100 {
			negVals = append(negVals, evalWin(randomWindow(rng, backgrounds)))
		}
	}
	return c, nil
}

// rawScan returns every window the current cascade accepts, without
// neighbour grouping — the mining feed.
func (c *Cascade) rawScan(g *vision.Gray, stepFraction float64) []Rect {
	if len(c.Stages) == 0 {
		return nil
	}
	ii := NewIntegral(g)
	var out []Rect
	for size := WindowSize; size <= mini(g.W, g.H); size = int(float64(size)*1.25 + 0.5) {
		s := float64(size) / WindowSize
		step := int(float64(size)*stepFraction + 0.5)
		if step < 1 {
			step = 1
		}
		for y := 0; y+size <= g.H; y += step {
			for x := 0; x+size <= g.W; x += step {
				if c.classifyWindow(ii, x, y, s, size) {
					out = append(out, Rect{X: x, Y: y, W: size, H: size})
				}
			}
		}
	}
	return out
}

// randomWindow crops a random square of random size from a random
// background and rescales it to the detector window.
func randomWindow(rng *rand.Rand, backgrounds []*vision.Gray) *vision.Gray {
	bg := backgrounds[rng.Intn(len(backgrounds))]
	maxSize := mini(bg.W, bg.H)
	size := WindowSize
	if maxSize > WindowSize {
		size += rng.Intn(maxSize - WindowSize + 1)
	}
	x := rng.Intn(bg.W - size + 1)
	y := rng.Intn(bg.H - size + 1)
	return resizeGray(cropGray(bg, Rect{X: x, Y: y, W: size, H: size}), WindowSize, WindowSize)
}

// cropGray extracts a sub-window.
func cropGray(g *vision.Gray, r Rect) *vision.Gray {
	out := vision.NewGray(r.W, r.H)
	for y := 0; y < r.H; y++ {
		copy(out.Pix[y*r.W:y*r.W+r.W], g.Pix[(r.Y+y)*g.W+r.X:(r.Y+y)*g.W+r.X+r.W])
	}
	return out
}

// resizeGray bilinearly resamples a grayscale buffer.
func resizeGray(src *vision.Gray, w, h int) *vision.Gray {
	if src.W == w && src.H == h {
		return src.Clone()
	}
	out := vision.NewGray(w, h)
	sx := float64(src.W) / float64(w)
	sy := float64(src.H) / float64(h)
	for y := 0; y < h; y++ {
		fy := (float64(y)+0.5)*sy - 0.5
		y0 := int(fy)
		ty := fy - float64(y0)
		for x := 0; x < w; x++ {
			fx := (float64(x)+0.5)*sx - 0.5
			x0 := int(fx)
			tx := fx - float64(x0)
			v := (1-tx)*(1-ty)*src.At(x0, y0) +
				tx*(1-ty)*src.At(x0+1, y0) +
				(1-tx)*ty*src.At(x0, y0+1) +
				tx*ty*src.At(x0+1, y0+1)
			out.Pix[y*w+x] = v
		}
	}
	return out
}
