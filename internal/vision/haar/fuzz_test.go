package haar

import (
	"math"
	"testing"

	"p3/internal/vision"
)

// grayFromBytes builds a small Gray whose dimensions and pixels are all
// driven by fuzz data, so the corpus explores degenerate shapes (1×N,
// N×1) as well as arbitrary pixel patterns.
func grayFromBytes(data []byte) *vision.Gray {
	if len(data) < 2 {
		return vision.NewGray(1, 1)
	}
	w := 1 + int(data[0])%24
	h := 1 + int(data[1])%24
	g := vision.NewGray(w, h)
	rest := data[2:]
	for i := range g.Pix {
		if len(rest) > 0 {
			g.Pix[i] = float64(rest[i%len(rest)])
		}
	}
	return g
}

// naiveSum is the oracle for Integral.Sum: the direct double loop.
func naiveSum(g *vision.Gray, x, y, w, h int) float64 {
	var s float64
	for yy := y; yy < y+h; yy++ {
		for xx := x; xx < x+w; xx++ {
			s += g.Pix[yy*g.W+xx]
		}
	}
	return s
}

// FuzzIntegralSum pins the summed-area table against the naive oracle on
// arbitrary images and windows: never panics, matches the double loop to
// floating-point tolerance, and window variance is never negative (the
// detector divides by its square root).
func FuzzIntegralSum(f *testing.F) {
	f.Add([]byte{8, 8, 1, 2, 3, 4, 5})
	f.Add([]byte{1, 24, 255})
	f.Add([]byte{24, 1, 0, 0, 128})
	f.Add([]byte{16, 16})
	f.Fuzz(func(t *testing.T, data []byte) {
		g := grayFromBytes(data)
		ii := NewIntegral(g)
		// Window geometry from trailing fuzz bytes, clamped in-bounds.
		pick := func(i int, m int) int {
			if m <= 0 {
				return 0
			}
			if len(data) <= 4+i {
				return m / 2
			}
			return int(data[4+i]) % m
		}
		x := pick(0, g.W)
		y := pick(1, g.H)
		w := 1 + pick(2, g.W-x)
		h := 1 + pick(3, g.H-y)

		got := ii.Sum(x, y, w, h)
		want := naiveSum(g, x, y, w, h)
		// Tolerance scales with the magnitude flowing through the table.
		tol := 1e-6 * (1 + math.Abs(want))
		if math.Abs(got-want) > tol {
			t.Fatalf("Sum(%d,%d,%d,%d) = %g, oracle %g (image %dx%d)",
				x, y, w, h, got, want, g.W, g.H)
		}
		sd := ii.WindowStdDev(x, y, w, h)
		if math.IsNaN(sd) || sd < 0 {
			t.Fatalf("WindowStdDev(%d,%d,%d,%d) = %g", x, y, w, h, sd)
		}
	})
}

// FuzzFeatureEval pins the rectangle features the cascade is built from:
// evaluating any generated feature over any window of any image must
// stay finite — NaNs here would silently poison AdaBoost training.
func FuzzFeatureEval(f *testing.F) {
	features := GenerateFeatures(32, 99)
	f.Add([]byte{20, 20, 7, 0, 0}, uint8(0))
	f.Add([]byte{24, 24, 200, 100, 50}, uint8(9))
	f.Fuzz(func(t *testing.T, data []byte, fi uint8) {
		g := grayFromBytes(data)
		if g.W < 24 || g.H < 24 {
			return // detector windows are 24×24; smaller images never reach Eval
		}
		ii := NewIntegral(g)
		ft := &features[int(fi)%len(features)]
		v := ft.Eval(ii, 0, 0, 1.0, 1.0)
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("feature %d evaluated to %g", int(fi)%len(features), v)
		}
	})
}
