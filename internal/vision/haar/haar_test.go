package haar

import (
	"math"
	"math/rand"
	"testing"

	"p3/internal/dataset"
	"p3/internal/vision"
)

func TestIntegralSums(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := vision.NewGray(17, 13)
	for i := range g.Pix {
		g.Pix[i] = float64(rng.Intn(256))
	}
	ii := NewIntegral(g)
	check := func(x, y, w, h int) {
		var want float64
		for yy := y; yy < y+h; yy++ {
			for xx := x; xx < x+w; xx++ {
				want += g.Pix[yy*g.W+xx]
			}
		}
		if got := ii.Sum(x, y, w, h); math.Abs(got-want) > 1e-9 {
			t.Errorf("Sum(%d,%d,%d,%d) = %v, want %v", x, y, w, h, got, want)
		}
	}
	check(0, 0, 17, 13)
	check(0, 0, 1, 1)
	check(16, 12, 1, 1)
	check(3, 2, 7, 5)
	check(5, 5, 1, 8)
}

func TestIntegralStdDev(t *testing.T) {
	g := vision.NewGray(8, 8)
	for i := range g.Pix {
		g.Pix[i] = 100 // flat
	}
	ii := NewIntegral(g)
	if sd := ii.WindowStdDev(0, 0, 8, 8); sd != 1 {
		t.Errorf("flat window stddev = %v, want floor 1", sd)
	}
	// Half 0, half 200 → stddev 100.
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			if x < 4 {
				g.Pix[y*8+x] = 0
			} else {
				g.Pix[y*8+x] = 200
			}
		}
	}
	ii = NewIntegral(g)
	if sd := ii.WindowStdDev(0, 0, 8, 8); math.Abs(sd-100) > 1e-9 {
		t.Errorf("stddev = %v, want 100", sd)
	}
}

func TestGenerateFeatures(t *testing.T) {
	fs := GenerateFeatures(500, 1)
	if len(fs) != 500 {
		t.Fatalf("%d features, want 500", len(fs))
	}
	// Deterministic for the same seed.
	fs2 := GenerateFeatures(500, 1)
	for i := range fs {
		if len(fs[i].Rects) != len(fs2[i].Rects) || fs[i].Rects[0] != fs2[i].Rects[0] {
			t.Fatal("feature generation not deterministic")
		}
	}
	// All rects within the window, and weights sum to ~0 area-weighted for
	// 2-rect features (balanced contrast features).
	for _, f := range fs {
		for _, r := range f.Rects {
			if r.X < 0 || r.Y < 0 || r.X+r.W > WindowSize || r.Y+r.H > WindowSize {
				t.Fatalf("rect %+v escapes window", r)
			}
		}
	}
}

func TestFeatureEvalScaleInvariance(t *testing.T) {
	// A feature evaluated on a flat image must be ~0 at any scale (weights
	// balance out with variance normalization).
	g := vision.NewGray(96, 96)
	for i := range g.Pix {
		g.Pix[i] = 128
	}
	ii := NewIntegral(g)
	f := Feature{Rects: []rect{{0, 0, 12, 24, 1}, {12, 0, 12, 24, -1}}}
	for _, size := range []int{24, 48, 96} {
		s := float64(size) / WindowSize
		inv := 1 / (ii.WindowStdDev(0, 0, size, size) * float64(size*size))
		if v := f.Eval(ii, 0, 0, s, inv); math.Abs(v) > 1e-9 {
			t.Errorf("size %d: flat-image feature = %v, want 0", size, v)
		}
	}
}

func TestTrainRejectsBadInput(t *testing.T) {
	if _, err := Train(nil, nil, TrainOptions{}); err == nil {
		t.Error("empty training sets accepted")
	}
	wrong := []*vision.Gray{vision.NewGray(10, 10)}
	if _, err := Train(wrong, wrong, TrainOptions{}); err == nil {
		t.Error("wrong window size accepted")
	}
}

func TestTrainSeparatesSyntheticClasses(t *testing.T) {
	// Tiny direct-training smoke test: bright-left vs bright-right windows
	// are separable by a single 2-rect feature.
	mk := func(leftBright bool, seed int64) *vision.Gray {
		rng := rand.New(rand.NewSource(seed))
		g := vision.NewGray(WindowSize, WindowSize)
		for y := 0; y < WindowSize; y++ {
			for x := 0; x < WindowSize; x++ {
				v := 40 + rng.Float64()*20
				if (x < WindowSize/2) == leftBright {
					v += 120
				}
				g.Pix[y*WindowSize+x] = v
			}
		}
		return g
	}
	var pos, neg []*vision.Gray
	for i := int64(0); i < 40; i++ {
		pos = append(pos, mk(true, i))
		neg = append(neg, mk(false, 1000+i))
	}
	c, err := Train(pos, neg, TrainOptions{NumFeatures: 300, StageSizes: []int{4}, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i := int64(100); i < 120; i++ {
		gp := mk(true, i)
		gn := mk(false, 2000+i)
		iiP, iiN := NewIntegral(gp), NewIntegral(gn)
		if c.classifyWindow(iiP, 0, 0, 1, WindowSize) {
			correct++
		}
		if !c.classifyWindow(iiN, 0, 0, 1, WindowSize) {
			correct++
		}
	}
	if correct < 36 { // 90% of 40 decisions
		t.Errorf("only %d/40 held-out windows classified correctly", correct)
	}
}

func TestDefaultCascadeDetection(t *testing.T) {
	c, err := Default()
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Stages) < 2 {
		t.Fatalf("default cascade has %d stages", len(c.Stages))
	}
	// Recall: most scenes with one face produce an overlapping detection.
	hits := 0
	const scenes = 8
	for s := int64(0); s < scenes; s++ {
		img, boxes := dataset.Scene(s, 160, 160, 1)
		dets := c.Detect(vision.Luma(img), nil)
		for _, d := range dets {
			for _, b := range boxes {
				if iou(Rect(b), d) > 0.3 {
					hits++
					goto next
				}
			}
		}
	next:
	}
	if hits < scenes*3/4 {
		t.Errorf("detected %d/%d scene faces", hits, scenes)
	}
	// Precision: few detections on pure background images.
	fp := 0
	for s := int64(500); s < 500+scenes; s++ {
		fp += c.CountFaces(vision.Luma(dataset.Natural(s, 160, 160)), nil)
	}
	if fp > scenes { // less than one FP per image on average
		t.Errorf("%d false positives across %d background images", fp, scenes)
	}
}

func TestDetectOnAlignedFaceCrop(t *testing.T) {
	c, err := Default()
	if err != nil {
		t.Fatal(err)
	}
	// A large aligned face (held-out identity, studio conditions) must be
	// found most of the time.
	found := 0
	const crops = 8
	for i := int64(900); i < 900+crops; i++ {
		id := dataset.NewIdentity(i)
		nu := dataset.NewControlledNuisance(i * 3)
		img := dataset.RenderFace(id, nu, 96, 96)
		if c.CountFaces(vision.Luma(img), nil) > 0 {
			found++
		}
	}
	if found < crops*3/4 {
		t.Errorf("found faces in %d/%d held-out aligned crops", found, crops)
	}
}

func TestGroupRects(t *testing.T) {
	raw := []Rect{
		{10, 10, 40, 40}, {12, 11, 40, 40}, {11, 12, 38, 38}, // cluster of 3
		{100, 100, 30, 30}, // singleton
	}
	got := groupRects(raw, 2)
	if len(got) != 1 {
		t.Fatalf("got %d groups, want 1", len(got))
	}
	g := got[0]
	if g.X < 9 || g.X > 13 || g.W < 35 || g.W > 42 {
		t.Errorf("merged rect %+v implausible", g)
	}
	if out := groupRects(nil, 2); out != nil {
		t.Error("empty input should give nil")
	}
	if out := groupRects(raw, 1); len(out) != 2 {
		t.Errorf("minNeighbors=1: %d groups, want 2", len(out))
	}
}

func TestIOU(t *testing.T) {
	a := Rect{0, 0, 10, 10}
	if v := iou(a, a); math.Abs(v-1) > 1e-12 {
		t.Errorf("self IoU = %v", v)
	}
	if v := iou(a, Rect{20, 20, 5, 5}); v != 0 {
		t.Errorf("disjoint IoU = %v", v)
	}
	if v := iou(a, Rect{5, 0, 10, 10}); math.Abs(v-1.0/3) > 1e-12 {
		t.Errorf("half-overlap IoU = %v, want 1/3", v)
	}
}
