package haar

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"p3/internal/vision"
)

// Stump is a depth-1 weak classifier over one feature.
type Stump struct {
	Feature   int // index into Cascade.Features
	Threshold float64
	Polarity  float64 // +1: predict face when value < threshold; −1: when ≥
	Alpha     float64 // AdaBoost vote weight
}

// vote returns Alpha if the stump predicts "face", 0 otherwise.
func (s *Stump) vote(v float64) float64 {
	if s.Polarity*v < s.Polarity*s.Threshold {
		return s.Alpha
	}
	return 0
}

// Stage is one level of the attentional cascade: a boosted committee with a
// pass threshold tuned for a high detection rate.
type Stage struct {
	Stumps    []Stump
	Threshold float64 // pass when Σ votes ≥ Threshold
}

// Cascade is a trained detector.
type Cascade struct {
	Features []Feature
	Stages   []Stage
}

// TrainOptions configures cascade training.
type TrainOptions struct {
	NumFeatures int     // candidate pool size (default 1500)
	StageSizes  []int   // stumps per stage (default {8, 16, 30})
	MinDetect   float64 // per-stage detection rate on positives (default 0.995)
	Seed        int64
}

func (o *TrainOptions) defaults() {
	if o.NumFeatures == 0 {
		o.NumFeatures = 1500
	}
	if len(o.StageSizes) == 0 {
		o.StageSizes = []int{8, 16, 30}
	}
	if o.MinDetect == 0 {
		o.MinDetect = 0.995
	}
}

// Train builds a cascade from positive (face) and negative windows, all
// WindowSize×WindowSize. Each stage is AdaBoost over decision stumps; its
// threshold is lowered until MinDetect of the positives pass; negatives that
// survive feed the next stage (bootstrapping).
func Train(pos, neg []*vision.Gray, opts TrainOptions) (*Cascade, error) {
	opts.defaults()
	if len(pos) == 0 || len(neg) == 0 {
		return nil, errors.New("haar: need positive and negative examples")
	}
	for _, g := range append(append([]*vision.Gray{}, pos...), neg...) {
		if g.W != WindowSize || g.H != WindowSize {
			return nil, fmt.Errorf("haar: training window %dx%d, want %dx%d", g.W, g.H, WindowSize, WindowSize)
		}
	}
	features := GenerateFeatures(opts.NumFeatures, opts.Seed)
	c := &Cascade{Features: features}

	// Precompute normalized feature values for every sample.
	eval := func(g *vision.Gray) []float64 {
		ii := NewIntegral(g)
		inv := 1 / (ii.WindowStdDev(0, 0, WindowSize, WindowSize) * WindowSize * WindowSize)
		vals := make([]float64, len(features))
		for fi := range features {
			vals[fi] = features[fi].Eval(ii, 0, 0, 1, inv)
		}
		return vals
	}
	posVals := make([][]float64, len(pos))
	for i, g := range pos {
		posVals[i] = eval(g)
	}
	negVals := make([][]float64, len(neg))
	for i, g := range neg {
		negVals[i] = eval(g)
	}

	curNeg := negVals
	for _, size := range opts.StageSizes {
		if len(curNeg) == 0 {
			break // all negatives rejected already
		}
		stage := trainStage(features, posVals, curNeg, size, opts.MinDetect)
		c.Stages = append(c.Stages, stage)
		// Keep only false positives for the next stage.
		var fp [][]float64
		for _, nv := range curNeg {
			if stagePasses(&stage, nv) {
				fp = append(fp, nv)
			}
		}
		curNeg = fp
	}
	if len(c.Stages) == 0 {
		return nil, errors.New("haar: training produced no stages")
	}
	return c, nil
}

func stagePasses(st *Stage, vals []float64) bool {
	var score float64
	for i := range st.Stumps {
		score += st.Stumps[i].vote(vals[st.Stumps[i].Feature])
	}
	return score >= st.Threshold
}

// trainStage runs AdaBoost for `size` rounds and then tunes the stage
// threshold for the detection-rate target.
func trainStage(features []Feature, posVals, negVals [][]float64, size int, minDetect float64) Stage {
	np, nn := len(posVals), len(negVals)
	w := make([]float64, np+nn) // weights: positives first
	for i := 0; i < np; i++ {
		w[i] = 0.5 / float64(np)
	}
	for i := 0; i < nn; i++ {
		w[np+i] = 0.5 / float64(nn)
	}
	val := func(sample, fi int) float64 {
		if sample < np {
			return posVals[sample][fi]
		}
		return negVals[sample-np][fi]
	}
	label := func(sample int) bool { return sample < np }

	// Presort samples by value once per feature; sample order is invariant
	// across boosting rounds, only the weights change.
	nSamples := np + nn
	sorted := make([][]int32, len(features))
	for fi := range features {
		idx := make([]int32, nSamples)
		for s := range idx {
			idx[s] = int32(s)
		}
		sort.Slice(idx, func(a, b int) bool { return val(int(idx[a]), fi) < val(int(idx[b]), fi) })
		sorted[fi] = idx
	}

	var stage Stage
	for round := 0; round < size; round++ {
		// Normalize weights.
		var sum float64
		for _, wi := range w {
			sum += wi
		}
		for i := range w {
			w[i] /= sum
		}
		var totPos, totNeg float64
		for s := range w {
			if label(s) {
				totPos += w[s]
			} else {
				totNeg += w[s]
			}
		}
		// Find the lowest-weighted-error stump across all features.
		bestErr := math.Inf(1)
		var best Stump
		for fi := range features {
			idx := sorted[fi]
			// Scan split points. With samples sorted by value, classify
			// "face if v < θ" (polarity +1) or "face if v ≥ θ" (−1).
			var belowPos, belowNeg float64
			for k := 0; k <= nSamples; k++ {
				// Threshold between idx[k-1] and idx[k].
				// polarity +1 errors: negatives below + positives above.
				e1 := belowNeg + (totPos - belowPos)
				// polarity −1 errors: positives below + negatives above.
				e2 := belowPos + (totNeg - belowNeg)
				if e1 < bestErr || e2 < bestErr {
					var theta float64
					switch {
					case k == 0:
						theta = val(int(idx[0]), fi) - 1e-9
					case k == nSamples:
						theta = val(int(idx[nSamples-1]), fi) + 1e-9
					default:
						theta = (val(int(idx[k-1]), fi) + val(int(idx[k]), fi)) / 2
					}
					if e1 < bestErr {
						bestErr = e1
						best = Stump{Feature: fi, Threshold: theta, Polarity: 1}
					}
					if e2 < bestErr {
						bestErr = e2
						best = Stump{Feature: fi, Threshold: theta, Polarity: -1}
					}
				}
				if k < nSamples {
					s := int(idx[k])
					if label(s) {
						belowPos += w[s]
					} else {
						belowNeg += w[s]
					}
				}
			}
		}
		eps := math.Max(bestErr, 1e-10)
		beta := eps / (1 - eps)
		best.Alpha = math.Log(1 / beta)
		// Reweight: correct samples shrink by beta.
		for s := range w {
			correct := (best.vote(val(s, best.Feature)) > 0) == label(s)
			if correct {
				w[s] *= beta
			}
		}
		stage.Stumps = append(stage.Stumps, best)
	}
	// Tune stage threshold: default is half the total alpha (AdaBoost's
	// natural decision point); lower it until minDetect positives pass.
	var totalAlpha float64
	for i := range stage.Stumps {
		totalAlpha += stage.Stumps[i].Alpha
	}
	scores := make([]float64, np)
	for i := 0; i < np; i++ {
		var sc float64
		for _, st := range stage.Stumps {
			sc += st.vote(posVals[i][st.Feature])
		}
		scores[i] = sc
	}
	sort.Float64s(scores)
	// Threshold at the (1−minDetect) quantile of positive scores, capped at
	// the natural AdaBoost threshold.
	idx := int(float64(np) * (1 - minDetect))
	if idx >= np {
		idx = np - 1
	}
	th := scores[idx] - 1e-9
	if natural := totalAlpha / 2; th > natural {
		th = natural
	}
	stage.Threshold = th
	return stage
}
