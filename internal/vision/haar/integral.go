// Package haar implements a Viola–Jones face detector: integral-image
// rectangle features, AdaBoost-trained decision stumps arranged in an
// attentional cascade, and a variance-normalized multi-scale sliding-window
// detector. It stands in for the OpenCV Haar detector the paper attacks P3
// with (Fig. 8b); the cascade is trained at startup on the synthetic face
// corpus of internal/dataset, so the detector and the corpus share the same
// notion of "face" for both baseline and public-part runs.
package haar

import (
	"math"

	"p3/internal/vision"
)

// Integral holds summed-area tables of an image and its square, enabling
// O(1) rectangle sums and window variance (Viola–Jones §2.1).
type Integral struct {
	W, H  int
	sum   []float64 // (W+1)×(H+1)
	sqsum []float64
}

// NewIntegral builds the integral images of g.
func NewIntegral(g *vision.Gray) *Integral {
	w, h := g.W, g.H
	ii := &Integral{W: w, H: h, sum: make([]float64, (w+1)*(h+1)), sqsum: make([]float64, (w+1)*(h+1))}
	stride := w + 1
	for y := 1; y <= h; y++ {
		var rowSum, rowSq float64
		for x := 1; x <= w; x++ {
			v := g.Pix[(y-1)*w+x-1]
			rowSum += v
			rowSq += v * v
			ii.sum[y*stride+x] = ii.sum[(y-1)*stride+x] + rowSum
			ii.sqsum[y*stride+x] = ii.sqsum[(y-1)*stride+x] + rowSq
		}
	}
	return ii
}

// Sum returns the pixel sum over the rectangle [x, x+w) × [y, y+h).
func (ii *Integral) Sum(x, y, w, h int) float64 {
	s := ii.W + 1
	return ii.sum[(y+h)*s+x+w] - ii.sum[y*s+x+w] - ii.sum[(y+h)*s+x] + ii.sum[y*s+x]
}

// sqSum returns the squared-pixel sum over the rectangle.
func (ii *Integral) sqSum(x, y, w, h int) float64 {
	s := ii.W + 1
	return ii.sqsum[(y+h)*s+x+w] - ii.sqsum[y*s+x+w] - ii.sqsum[(y+h)*s+x] + ii.sqsum[y*s+x]
}

// WindowStdDev returns the standard deviation of the window, floored at 1 to
// avoid amplifying flat regions.
func (ii *Integral) WindowStdDev(x, y, w, h int) float64 {
	n := float64(w * h)
	mean := ii.Sum(x, y, w, h) / n
	v := ii.sqSum(x, y, w, h)/n - mean*mean
	if v < 1 {
		return 1
	}
	return math.Sqrt(v)
}
