package haar

import (
	"math"
	"math/rand"
	"sync"

	"p3/internal/dataset"
	"p3/internal/vision"
)

// Rect is a detection in image coordinates.
type Rect struct {
	X, Y, W, H int
}

// iou returns intersection-over-union of two rects.
func iou(a, b Rect) float64 {
	x0, y0 := maxi(a.X, b.X), maxi(a.Y, b.Y)
	x1, y1 := mini(a.X+a.W, b.X+b.W), mini(a.Y+a.H, b.Y+b.H)
	if x1 <= x0 || y1 <= y0 {
		return 0
	}
	inter := float64((x1 - x0) * (y1 - y0))
	union := float64(a.W*a.H+b.W*b.H) - inter
	return inter / union
}

// DetectOptions tunes the sliding-window scan.
type DetectOptions struct {
	ScaleFactor  float64 // window growth per scale step (default 1.25)
	MinSize      int     // smallest window (default WindowSize)
	StepFraction float64 // slide step as a fraction of window size (default 0.08)
	MinNeighbors int     // raw hits required to confirm a detection (default 3)
}

func (o *DetectOptions) defaults() {
	if o.ScaleFactor == 0 {
		o.ScaleFactor = 1.25
	}
	if o.MinSize == 0 {
		o.MinSize = WindowSize
	}
	if o.StepFraction == 0 {
		o.StepFraction = 0.05
	}
	if o.MinNeighbors == 0 {
		o.MinNeighbors = 2
	}
}

// Detect runs the cascade over all positions and scales of a grayscale
// image, grouping overlapping raw hits (Viola–Jones post-processing): a
// detection is reported when at least MinNeighbors raw windows agree.
func (c *Cascade) Detect(g *vision.Gray, opts *DetectOptions) []Rect {
	var o DetectOptions
	if opts != nil {
		o = *opts
	}
	o.defaults()
	ii := NewIntegral(g)
	var raw []Rect
	for size := o.MinSize; size <= mini(g.W, g.H); size = int(float64(size)*o.ScaleFactor + 0.5) {
		s := float64(size) / WindowSize
		step := int(float64(size)*o.StepFraction + 0.5)
		if step < 1 {
			step = 1
		}
		for y := 0; y+size <= g.H; y += step {
			for x := 0; x+size <= g.W; x += step {
				if c.classifyWindow(ii, x, y, s, size) {
					raw = append(raw, Rect{X: x, Y: y, W: size, H: size})
				}
			}
		}
	}
	return groupRects(raw, o.MinNeighbors)
}

// classifyWindow runs all cascade stages on one window.
func (c *Cascade) classifyWindow(ii *Integral, x, y int, s float64, size int) bool {
	invNorm := 1 / (ii.WindowStdDev(x, y, size, size) * float64(size*size))
	for si := range c.Stages {
		st := &c.Stages[si]
		var score float64
		for i := range st.Stumps {
			sp := &st.Stumps[i]
			v := c.Features[sp.Feature].Eval(ii, x, y, s, invNorm)
			score += sp.vote(v)
		}
		if score < st.Threshold {
			return false
		}
	}
	return true
}

// groupRects clusters raw hits by overlap and keeps clusters with at least
// minNeighbors members, returning each cluster's average rectangle.
func groupRects(raw []Rect, minNeighbors int) []Rect {
	n := len(raw)
	if n == 0 {
		return nil
	}
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(i int) int {
		for parent[i] != i {
			parent[i] = parent[parent[i]]
			i = parent[i]
		}
		return i
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if iou(raw[i], raw[j]) > 0.3 {
				parent[find(i)] = find(j)
			}
		}
	}
	clusters := map[int][]Rect{}
	for i := range raw {
		r := find(i)
		clusters[r] = append(clusters[r], raw[i])
	}
	var out []Rect
	for _, members := range clusters {
		if len(members) < minNeighbors {
			continue
		}
		var sx, sy, sw, sh int
		for _, m := range members {
			sx += m.X
			sy += m.Y
			sw += m.W
			sh += m.H
		}
		k := len(members)
		out = append(out, Rect{X: sx / k, Y: sy / k, W: sw / k, H: sh / k})
	}
	return out
}

// CountFaces is the Fig. 8b measurement: the number of confirmed detections
// in an image.
func (c *Cascade) CountFaces(g *vision.Gray, opts *DetectOptions) int {
	return len(c.Detect(g, opts))
}

var (
	defaultOnce    sync.Once
	defaultCascade *Cascade
	defaultErr     error
)

// Default returns the package's shared cascade, trained once (deterministic
// seed) on the synthetic face corpus: 300 rendered faces and 600 natural
// non-face windows at 24×24.
func Default() (*Cascade, error) {
	defaultOnce.Do(func() {
		defaultCascade, defaultErr = trainDefault()
	})
	return defaultCascade, defaultErr
}

func trainDefault() (*Cascade, error) {
	faces := dataset.FaceCorpus(60, 5, WindowSize, WindowSize, 424242)
	pos := make([]*vision.Gray, len(faces))
	for i := range faces {
		pos[i] = vision.Luma(faces[i].Img)
	}
	// Negative pool: natural scenes plus generic noise and block textures.
	// Production cascades (OpenCV's) are trained against thousands of
	// varied non-face images; without texture diversity here, the cascade
	// false-positives on inputs far from the natural manifold — such as
	// the blocky mid-gray pixels of a P3 public part, which would corrupt
	// the Fig. 8b measurement with detector artifacts.
	backgrounds := make([]*vision.Gray, 0, 80)
	for i := 0; i < 40; i++ {
		backgrounds = append(backgrounds, vision.Luma(dataset.NonFacePatch(int64(i), 160, 160)))
	}
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 20; i++ {
		backgrounds = append(backgrounds, noiseTexture(rng, 160, 160))
	}
	for i := 0; i < 20; i++ {
		backgrounds = append(backgrounds, blockTexture(rng, 160, 160))
	}
	for i := 0; i < 20; i++ {
		backgrounds = append(backgrounds, acNoiseTexture(rng, 160, 160))
	}
	return TrainMined(pos, backgrounds, TrainOptions{
		Seed:       7,
		StageSizes: []int{6, 12, 25, 50},
	})
}

// noiseTexture is flat gray plus white noise of random amplitude.
func noiseTexture(rng *rand.Rand, w, h int) *vision.Gray {
	g := vision.NewGray(w, h)
	base := 40 + rng.Float64()*160
	amp := 5 + rng.Float64()*60
	for i := range g.Pix {
		g.Pix[i] = clampPix(base + (rng.Float64()*2-1)*amp)
	}
	return g
}

// blockTexture mimics heavily quantized JPEG content: random gray levels on
// an 8×8 grid with mild per-pixel noise.
func blockTexture(rng *rand.Rand, w, h int) *vision.Gray {
	g := vision.NewGray(w, h)
	for by := 0; by < (h+7)/8; by++ {
		for bx := 0; bx < (w+7)/8; bx++ {
			base := 60 + rng.Float64()*140
			for y := by * 8; y < by*8+8 && y < h; y++ {
				for x := bx * 8; x < bx*8+8 && x < w; x++ {
					g.Pix[y*w+x] = clampPix(base + (rng.Float64()*2-1)*12)
				}
			}
		}
	}
	return g
}

// acNoiseTexture mimics DC-suppressed JPEG content: every 8×8 block centers
// on mid-gray with random low-frequency within-block oscillations — the
// texture family of heavily redacted or coefficient-clipped images.
func acNoiseTexture(rng *rand.Rand, w, h int) *vision.Gray {
	g := vision.NewGray(w, h)
	for by := 0; by < (h+7)/8; by++ {
		for bx := 0; bx < (w+7)/8; bx++ {
			// A couple of random 2-D cosine modes per block.
			type mode struct{ fx, fy, amp, phase float64 }
			modes := make([]mode, 1+rng.Intn(3))
			for m := range modes {
				modes[m] = mode{
					fx:    float64(rng.Intn(4)),
					fy:    float64(rng.Intn(4)),
					amp:   8 + rng.Float64()*35,
					phase: rng.Float64() * 6.28,
				}
			}
			for y := by * 8; y < by*8+8 && y < h; y++ {
				for x := bx * 8; x < bx*8+8 && x < w; x++ {
					v := 128.0
					for _, m := range modes {
						v += m.amp * math.Cos(2*math.Pi*(m.fx*float64(x%8)/8+m.fy*float64(y%8)/8)+m.phase)
					}
					g.Pix[y*w+x] = clampPix(v)
				}
			}
		}
	}
	return g
}

func clampPix(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return v
}

func mini(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}
