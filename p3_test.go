package p3

import (
	"bytes"
	"testing"

	"p3/internal/dataset"
	"p3/internal/imaging"
	"p3/internal/jpegx"
	"p3/internal/vision"
)

// TestFacadeRoundTrip exercises the public API end to end.
func TestFacadeRoundTrip(t *testing.T) {
	img := dataset.Natural(1, 256, 192)
	coeffs, err := img.ToCoeffs(92, jpegx.Sub420)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := jpegx.EncodeCoeffs(&buf, coeffs, nil); err != nil {
		t.Fatal(err)
	}
	key, err := NewKey()
	if err != nil {
		t.Fatal(err)
	}
	split, err := Split(buf.Bytes(), key, nil)
	if err != nil {
		t.Fatal(err)
	}
	if split.Threshold != DefaultThreshold {
		t.Errorf("threshold %d, want default %d", split.Threshold, DefaultThreshold)
	}
	// Public part must be decodable stand-alone and degraded.
	pubIm, err := jpegx.Decode(bytes.NewReader(split.PublicJPEG))
	if err != nil {
		t.Fatalf("public part not a valid JPEG: %v", err)
	}
	psnr, err := vision.PSNR(coeffs.ToPlanar(), pubIm.ToPlanar())
	if err != nil {
		t.Fatal(err)
	}
	if psnr > 25 {
		t.Errorf("public part PSNR %.1f dB — not degraded enough", psnr)
	}
	// Exact reconstruction.
	joined, err := Join(split.PublicJPEG, split.SecretBlob, key)
	if err != nil {
		t.Fatal(err)
	}
	got, err := jpegx.Decode(bytes.NewReader(joined))
	if err != nil {
		t.Fatal(err)
	}
	for ci := range coeffs.Components {
		for bi := range coeffs.Components[ci].Blocks {
			if got.Components[ci].Blocks[bi] != coeffs.Components[ci].Blocks[bi] {
				t.Fatal("facade round trip not coefficient-exact")
			}
		}
	}
}

func TestFacadeJoinProcessed(t *testing.T) {
	img := dataset.Natural(2, 200, 160)
	coeffs, err := img.ToCoeffs(92, jpegx.Sub444)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := jpegx.EncodeCoeffs(&buf, coeffs, nil); err != nil {
		t.Fatal(err)
	}
	key, _ := NewKey()
	split, err := Split(buf.Bytes(), key, &Options{Threshold: 10})
	if err != nil {
		t.Fatal(err)
	}
	// Simulate PSP: decode → resize → re-encode.
	pubIm, err := jpegx.Decode(bytes.NewReader(split.PublicJPEG))
	if err != nil {
		t.Fatal(err)
	}
	op := imaging.Resize{W: 100, H: 80, Filter: imaging.Triangle}
	served := imaging.Clamp(op.Apply(pubIm.ToPlanar()))
	servedCo, err := served.ToCoeffs(95, jpegx.Sub444)
	if err != nil {
		t.Fatal(err)
	}
	var servedBuf bytes.Buffer
	if err := jpegx.EncodeCoeffs(&servedBuf, servedCo, nil); err != nil {
		t.Fatal(err)
	}
	rec, err := JoinProcessed(servedBuf.Bytes(), split.SecretBlob, key, op)
	if err != nil {
		t.Fatal(err)
	}
	want := imaging.Clamp(op.Apply(coeffs.ToPlanar()))
	psnr, err := vision.PSNR(want, rec)
	if err != nil {
		t.Fatal(err)
	}
	if psnr < 30 {
		t.Errorf("processed reconstruction %.1f dB, want >= 30", psnr)
	}
}

func TestFacadeErrors(t *testing.T) {
	key, _ := NewKey()
	if _, err := Split([]byte("junk"), key, nil); err == nil {
		t.Error("junk accepted")
	}
	if _, err := Join([]byte("junk"), []byte("junk"), key); err == nil {
		t.Error("junk parts accepted")
	}
}
