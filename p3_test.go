package p3

import (
	"bytes"
	"testing"

	"p3/internal/dataset"
	"p3/internal/jpegx"
	"p3/internal/vision"
)

// testJPEG synthesizes a photo and returns its JPEG bytes plus the decoded
// coefficient image for exactness checks.
func testJPEG(t testing.TB, seed int64, w, h int, sub jpegx.Subsampling) ([]byte, *jpegx.CoeffImage) {
	t.Helper()
	img := dataset.Natural(seed, w, h)
	coeffs, err := img.ToCoeffs(92, sub)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := jpegx.EncodeCoeffs(&buf, coeffs, nil); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), coeffs
}

func newTestCodec(t testing.TB, opts ...Option) *Codec {
	t.Helper()
	key, err := NewKey()
	if err != nil {
		t.Fatal(err)
	}
	codec, err := New(key, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return codec
}

// TestFacadeRoundTrip exercises the Codec end to end.
func TestFacadeRoundTrip(t *testing.T) {
	jpegBytes, coeffs := testJPEG(t, 1, 256, 192, jpegx.Sub420)
	codec := newTestCodec(t)
	split, err := codec.SplitBytes(jpegBytes)
	if err != nil {
		t.Fatal(err)
	}
	if split.Threshold != DefaultThreshold {
		t.Errorf("threshold %d, want default %d", split.Threshold, DefaultThreshold)
	}
	// Public part must be decodable stand-alone and degraded.
	pubIm, err := jpegx.Decode(bytes.NewReader(split.PublicJPEG))
	if err != nil {
		t.Fatalf("public part not a valid JPEG: %v", err)
	}
	psnr, err := vision.PSNR(coeffs.ToPlanar(), pubIm.ToPlanar())
	if err != nil {
		t.Fatal(err)
	}
	if psnr > 25 {
		t.Errorf("public part PSNR %.1f dB — not degraded enough", psnr)
	}
	// Exact reconstruction.
	joined, err := codec.JoinBytes(split.PublicJPEG, split.SecretBlob)
	if err != nil {
		t.Fatal(err)
	}
	got, err := jpegx.Decode(bytes.NewReader(joined))
	if err != nil {
		t.Fatal(err)
	}
	for ci := range coeffs.Components {
		for bi := range coeffs.Components[ci].Blocks {
			if got.Components[ci].Blocks[bi] != coeffs.Components[ci].Blocks[bi] {
				t.Fatal("facade round trip not coefficient-exact")
			}
		}
	}
}

func TestFacadeErrors(t *testing.T) {
	codec := newTestCodec(t)
	if _, err := codec.SplitBytes([]byte("junk")); err == nil {
		t.Error("junk accepted")
	}
	if _, err := codec.JoinBytes([]byte("junk"), []byte("junk")); err == nil {
		t.Error("junk parts accepted")
	}
}

// TestDeprecatedWrappers keeps the legacy package-level surface working.
func TestDeprecatedWrappers(t *testing.T) {
	jpegBytes, coeffs := testJPEG(t, 3, 128, 96, jpegx.Sub420)
	key, err := NewKey()
	if err != nil {
		t.Fatal(err)
	}
	split, err := Split(jpegBytes, key, nil)
	if err != nil {
		t.Fatal(err)
	}
	if split.Threshold != DefaultThreshold {
		t.Errorf("nil opts threshold %d, want %d", split.Threshold, DefaultThreshold)
	}
	// Legacy zero-threshold still means "default".
	split2, err := Split(jpegBytes, key, &Options{Threshold: 0, OptimizeHuffman: true})
	if err != nil {
		t.Fatal(err)
	}
	if split2.Threshold != DefaultThreshold {
		t.Errorf("legacy zero threshold resolved to %d, want %d", split2.Threshold, DefaultThreshold)
	}
	joined, err := Join(split.PublicJPEG, split.SecretBlob, key)
	if err != nil {
		t.Fatal(err)
	}
	got, err := jpegx.Decode(bytes.NewReader(joined))
	if err != nil {
		t.Fatal(err)
	}
	if got.Width != coeffs.Width || got.Height != coeffs.Height {
		t.Errorf("joined %dx%d, want %dx%d", got.Width, got.Height, coeffs.Width, coeffs.Height)
	}
	op := Resize(64, 48, FilterTriangle)
	served := fabricateServed(t, split.PublicJPEG, op)
	if _, err := JoinProcessed(served, split.SecretBlob, key, op); err != nil {
		t.Errorf("deprecated JoinProcessed: %v", err)
	}
}

// fabricateServed simulates a PSP: decode the public part, apply the
// transform in the pixel domain, re-encode — all through the public API.
func fabricateServed(t testing.TB, publicJPEG []byte, op Transform) []byte {
	t.Helper()
	img, err := DecodeImage(bytes.NewReader(publicJPEG))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := op.Apply(img).EncodeJPEG(&buf, 95); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}
