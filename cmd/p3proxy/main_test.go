package main

import (
	"path/filepath"
	"testing"
	"time"

	"p3"
)

func TestParseStoreSpec(t *testing.T) {
	dir := t.TempDir()
	disk := func(name string) string { return "disk:" + filepath.Join(dir, name) }

	single, err := parseStoreSpec(disk("a"), 1, time.Second, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := single.(*p3.DiskSecretStore); !ok {
		t.Errorf("single backend = %T, want *p3.DiskSecretStore", single)
	}

	sharded, err := parseStoreSpec(disk("a")+","+disk("b"), 2, time.Second, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sh, ok := sharded.(*p3.ShardedSecretStore); !ok || sh.Replicas() != 2 {
		t.Errorf("multi backend = %T (replicas?), want 2-replica *p3.ShardedSecretStore", sharded)
	}

	spec := "erasure:k=2,n=3," + disk("a") + "," + disk("b") + "," + disk("c")
	erasure, err := parseStoreSpec(spec, 1, time.Second, 0)
	if err != nil {
		t.Fatal(err)
	}
	es, ok := erasure.(*p3.ErasureSecretStore)
	if !ok {
		t.Fatalf("erasure spec = %T, want *p3.ErasureSecretStore", erasure)
	}
	if k, n := es.Scheme(); k != 2 || n != 3 {
		t.Errorf("scheme = %d-of-%d, want 2-of-3", k, n)
	}

	for _, bad := range []string{
		"ftp://nope",
		"erasure:k=4,n=6," + disk("a"), // not enough shards for the scheme
		"erasure:k=zzz," + disk("a"),
		"erasure:k=4x,n=6y," + disk("a"), // trailing garbage must not parse as 4/6
		"erasure:k=-1,n=3," + disk("a"),
		"",
	} {
		if _, err := parseStoreSpec(bad, 1, time.Second, 0); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}
