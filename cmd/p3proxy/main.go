// Command p3proxy runs the client-side trusted proxy against a PSP and a
// blob store. Applications point their photo traffic at the proxy and use
// the PSP's own API; uploads are split and encrypted, downloads are
// reconstructed, transparently.
//
//	p3proxy -addr :9090 -psp http://localhost:8080 -store http://localhost:8081 -key p3.key
//
// The -store flag accepts an HTTP blob store (http://...), a local
// directory (disk:/path), or a comma-separated list of either, which is
// served as one consistent-hash sharded store with -replicas copies of
// each blob:
//
//	p3proxy -store disk:/mnt/a,disk:/mnt/b,http://nas:8081/blobs -replicas 2
//
// Prefixing the list with erasure: serves it as an erasure-coded,
// self-healing store instead: each secret part is Reed-Solomon striped
// into k data + (n-k) parity shares on n distinct shards, so any n-k
// shards can die with zero data loss at n/k× storage (1.5× for the
// default 4-of-6 scheme, versus 3× for 3 replicas), and a background
// scrubber (-scrub-interval) re-encodes missing or corrupt shares onto
// revived shards:
//
//	p3proxy -store erasure:k=4,n=6,disk:/mnt/a,disk:/mnt/b,disk:/mnt/c,disk:/mnt/d,disk:/mnt/e,disk:/mnt/f
//
// Besides photos, the proxy serves P3MJ video clips (§4.2) end to end:
// POST /video/upload splits every frame and stores both parts in the blob
// store; GET /video/{id} joins the clip back, and GET /video/{id}?frame=N
// seeks a single frame as a JPEG (`-video-max-bytes` bounds accepted clip
// uploads). Build clips from JPEG frames with `p3 pack`.
//
// Calibration (§4.1) runs once at startup; -recalibrate-interval re-checks
// it periodically in the background with a cheap one-photo probe, running
// the full sweep only when the PSP's pipeline actually changed. Downloads
// keep serving the previous calibration epoch while a pass is in flight,
// and after an epoch flip the -warm-topk hottest variants are
// re-reconstructed before traffic finds them cold. POST /calibrate
// triggers a pass on demand (?force=1 skips the probe); a second request
// while one is running gets 503 + Retry-After.
//
// -max-inflight N turns on admission control (internal/admission): at
// most N requests execute at once, the rest wait in per-cost-class
// priority queues (cached-hit downloads ahead of cold reconstructions
// ahead of calibrations) bounded by -queue-depth, and requests that
// cannot be served in time are shed with 503 + Retry-After. -client-rps
// adds per-client token buckets keyed by the X-P3-Client header (or the
// remote address), and an online storm detector clamps clients that ramp
// far past their fair share (-storm-clamp) without any per-client
// configuration. The /metrics and /stats endpoints expose the
// p3_admission_* series when admission is on.
//
// Serving-layer cache budgets are tunable (-secret-cache-bytes,
// -variant-cache-bytes). The proxy is fully instrumented: GET /stats
// reports cache hit/miss/coalesce/eviction counters plus per-operation
// request/error counts and latency percentiles as JSON, and GET /metrics
// serves Prometheus-style text exposition covering the proxy operations,
// all three caches, the codec's split/join timings, and — when -store
// names several backends — each shard's read/repair/failure counters
// (naming scheme in ARCHITECTURE.md). Drive realistic traffic at the
// stack with `go run ./cmd/p3load`.
//
// Generate the shared key with `p3 keygen`; every authorized recipient's
// proxy must be started with the same key file.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"p3"
	"p3/internal/admission"
	"p3/internal/dedup"
	"p3/internal/proxy"
	"p3/internal/similarity"
)

// parseBackend turns one -store list element into a SecretStore.
func parseBackend(part string, timeout time.Duration) (p3.SecretStore, error) {
	switch {
	case strings.HasPrefix(part, "disk:"):
		return p3.NewDiskSecretStore(strings.TrimPrefix(part, "disk:"))
	case strings.HasPrefix(part, "http://"), strings.HasPrefix(part, "https://"):
		return p3.NewHTTPSecretStore(part, p3.WithHTTPTimeout(timeout)), nil
	default:
		return nil, fmt.Errorf("unrecognized store %q (want http(s)://... or disk:/path)", part)
	}
}

// parseErasureSpec parses "k=4,n=6,<backend>,<backend>,..." (the part of
// the -store flag after "erasure:"; the k=/n= tokens are optional and
// default to the 4-of-6 scheme) into an erasure-coded store.
func parseErasureSpec(spec string, timeout, scrubInterval time.Duration) (p3.SecretStore, error) {
	k, n := p3.DefaultErasureK, p3.DefaultErasureN
	var stores []p3.SecretStore
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if v, ok := strings.CutPrefix(part, "k="); ok {
			var err error
			if k, err = strconv.Atoi(v); err != nil || k < 1 {
				return nil, fmt.Errorf("bad k=%q (want a positive integer)", v)
			}
			continue
		}
		if v, ok := strings.CutPrefix(part, "n="); ok {
			var err error
			if n, err = strconv.Atoi(v); err != nil || n < 1 {
				return nil, fmt.Errorf("bad n=%q (want a positive integer)", v)
			}
			continue
		}
		s, err := parseBackend(part, timeout)
		if err != nil {
			return nil, err
		}
		stores = append(stores, s)
	}
	return p3.NewErasureSecretStore(stores,
		p3.WithErasureScheme(k, n),
		p3.WithScrubInterval(scrubInterval))
}

// parseStoreSpec turns the -store flag into a SecretStore: one backend, a
// sharded store over several, or (with the erasure: prefix) an
// erasure-coded self-healing store.
func parseStoreSpec(spec string, replicas int, timeout, scrubInterval time.Duration) (p3.SecretStore, error) {
	if rest, ok := strings.CutPrefix(spec, "erasure:"); ok {
		return parseErasureSpec(rest, timeout, scrubInterval)
	}
	parts := strings.Split(spec, ",")
	stores := make([]p3.SecretStore, 0, len(parts))
	for _, part := range parts {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		s, err := parseBackend(part, timeout)
		if err != nil {
			return nil, err
		}
		stores = append(stores, s)
	}
	switch len(stores) {
	case 0:
		return nil, fmt.Errorf("no stores in %q", spec)
	case 1:
		if replicas > 1 {
			return nil, fmt.Errorf("-replicas %d needs at least %d stores", replicas, replicas)
		}
		return stores[0], nil
	default:
		return p3.NewShardedSecretStore(stores, p3.WithShardReplicas(replicas))
	}
}

func main() {
	addr := flag.String("addr", ":9090", "proxy listen address")
	pspURL := flag.String("psp", "http://localhost:8080", "PSP base URL")
	storeSpec := flag.String("store", "http://localhost:8081",
		"blob store(s): http(s)://... or disk:/path, comma-separated for sharding")
	replicas := flag.Int("replicas", 1, "copies of each secret part across shards")
	scrubInterval := flag.Duration("scrub-interval", time.Minute,
		"erasure store: period of the background repair scrubber (0 disables)")
	keyPath := flag.String("key", "p3.key", "hex key file (see `p3 keygen`)")
	threshold := flag.Int("t", p3.DefaultThreshold, "splitting threshold T")
	timeout := flag.Duration("timeout", p3.DefaultHTTPTimeout, "PSP and blob store request timeout")
	secretCache := flag.Int64("secret-cache-bytes", proxy.DefaultSecretCacheBytes,
		"secret-part cache budget in bytes")
	variantCache := flag.Int64("variant-cache-bytes", proxy.DefaultVariantCacheBytes,
		"reconstructed-variant cache budget in bytes")
	videoMax := flag.Int64("video-max-bytes", proxy.DefaultVideoMaxBytes,
		"largest accepted video clip upload in bytes")
	recalInterval := flag.Duration("recalibrate-interval", 0,
		"re-verify the calibration every interval in the background (probe first, full sweep only on mismatch; 0 disables)")
	warmTopK := flag.Int("warm-topk", proxy.DefaultWarmTopK,
		"hottest variants to pre-warm after a calibration epoch flip (0 disables)")
	maxInflight := flag.Int("max-inflight", 0,
		"admission control: concurrent requests the proxy serves, queueing the rest (0 disables admission entirely)")
	queueDepth := flag.Int("queue-depth", 0,
		"admission control: bounded queue depth per cost class (0 = default)")
	clientRPS := flag.Float64("client-rps", 0,
		"admission control: per-client token-bucket refill rate, keyed by X-P3-Client or remote address (0 = no per-client limit)")
	stormClamp := flag.Float64("storm-clamp", 0,
		"admission control: during a detected request storm, shed clients over this multiple of their fair share (0 = default)")
	dedupOn := flag.Bool("dedup", false,
		"content-addressed dedup of public parts: identical uploads share one PSP blob (refcounted; DELETE /photo/{id} drops a reference)")
	similarOn := flag.Bool("similarity", false,
		"perceptual-hash index over public parts, served on GET /similar/{id}?d=N")
	similarWorkers := flag.Int("similarity-workers", 4,
		"background hash workers feeding the similarity index")
	flag.Parse()

	keyData, err := os.ReadFile(*keyPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "p3proxy: %v\n", err)
		os.Exit(1)
	}
	key, err := p3.ParseKey(string(keyData))
	if err != nil {
		fmt.Fprintf(os.Stderr, "p3proxy: key file %s: %v\n", *keyPath, err)
		os.Exit(1)
	}

	store, err := parseStoreSpec(*storeSpec, *replicas, *timeout, *scrubInterval)
	if err != nil {
		fmt.Fprintf(os.Stderr, "p3proxy: -store: %v\n", err)
		os.Exit(1)
	}
	if sh, ok := store.(*p3.ShardedSecretStore); ok {
		fmt.Printf("p3proxy: sharding secret parts over %d stores (%d replicas)\n",
			sh.Shards(), sh.Replicas())
	}
	if es, ok := store.(*p3.ErasureSecretStore); ok {
		k, n := es.Scheme()
		fmt.Printf("p3proxy: erasure coding secret parts %d-of-%d over %d stores (scrub every %s)\n",
			k, n, es.Shards(), *scrubInterval)
	}

	codec, err := p3.New(key, p3.WithThreshold(*threshold))
	if err != nil {
		fmt.Fprintf(os.Stderr, "p3proxy: %v\n", err)
		os.Exit(1)
	}
	opts := []proxy.ProxyOption{
		proxy.WithSecretCacheBytes(*secretCache),
		proxy.WithVariantCacheBytes(*variantCache),
		proxy.WithVideoMaxBytes(*videoMax),
		proxy.WithRecalibrateInterval(*recalInterval),
		proxy.WithWarmTopK(*warmTopK),
	}
	if *maxInflight > 0 {
		ctrl, err := admission.New(admission.Config{
			MaxInflight: *maxInflight,
			QueueDepth:  *queueDepth,
			ClientRPS:   *clientRPS,
			StormClamp:  *stormClamp,
		}, nil, "proxy")
		if err != nil {
			fmt.Fprintf(os.Stderr, "p3proxy: %v\n", err)
			os.Exit(1)
		}
		opts = append(opts, proxy.WithAdmission(ctrl))
		fmt.Printf("p3proxy: admission control on (max-inflight %d, queue depth %d, client rps %g, storm clamp %g)\n",
			*maxInflight, *queueDepth, *clientRPS, *stormClamp)
	}
	var photos p3.PhotoService = p3.NewHTTPPhotoService(*pspURL, p3.WithHTTPTimeout(*timeout))
	if *dedupOn {
		photos = dedup.New(photos)
		fmt.Println("p3proxy: content-addressed dedup of public parts on")
	}
	if *similarOn {
		ix := similarity.NewIndex(similarity.WithWorkers(*similarWorkers))
		defer ix.Close()
		opts = append(opts, proxy.WithSimilarity(ix))
		fmt.Printf("p3proxy: similarity index on (%d hash workers, GET /similar/{id}?d=N)\n", *similarWorkers)
	}
	p := proxy.New(codec, photos, store, opts...)
	fmt.Printf("p3proxy: calibrating against %s ...\n", *pspURL)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	res, err := p.Calibrate(ctx)
	cancel()
	if err != nil {
		fmt.Fprintf(os.Stderr, "p3proxy: calibration failed: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("p3proxy: calibrated pipeline %s (match %.1f dB)\n", res.Op, res.PSNR)
	if *recalInterval > 0 {
		fmt.Printf("p3proxy: recalibrating every %s in the background (pre-warming top %d variants on epoch flips)\n",
			*recalInterval, *warmTopK)
	}
	fmt.Printf("p3proxy: listening on %s (T=%d, secret cache %d MiB, variant cache %d MiB)\n",
		*addr, *threshold, *secretCache>>20, *variantCache>>20)
	if err := http.ListenAndServe(*addr, p); err != nil {
		fmt.Fprintf(os.Stderr, "p3proxy: %v\n", err)
		os.Exit(1)
	}
}
