// Command p3proxy runs the client-side trusted proxy against a PSP and a
// blob store. Applications point their photo traffic at the proxy and use
// the PSP's own API; uploads are split and encrypted, downloads are
// reconstructed, transparently.
//
//	p3proxy -addr :9090 -psp http://localhost:8080 -store http://localhost:8081 -key p3.key
//
// Generate the shared key with `p3 keygen`; every authorized recipient's
// proxy must be started with the same key file.
package main

import (
	"bytes"
	"encoding/hex"
	"flag"
	"fmt"
	"net/http"
	"os"

	"p3/internal/core"
	"p3/internal/proxy"
)

func main() {
	addr := flag.String("addr", ":9090", "proxy listen address")
	pspURL := flag.String("psp", "http://localhost:8080", "PSP base URL")
	storeURL := flag.String("store", "http://localhost:8081", "blob store base URL")
	keyPath := flag.String("key", "p3.key", "hex key file (see `p3 keygen`)")
	threshold := flag.Int("t", core.DefaultThreshold, "splitting threshold T")
	flag.Parse()

	keyData, err := os.ReadFile(*keyPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "p3proxy: %v\n", err)
		os.Exit(1)
	}
	var key core.Key
	raw, err := hex.DecodeString(string(bytes.TrimSpace(keyData)))
	if err != nil || len(raw) != len(key) {
		fmt.Fprintf(os.Stderr, "p3proxy: malformed key file %s\n", *keyPath)
		os.Exit(1)
	}
	copy(key[:], raw)

	p := proxy.New(*pspURL, *storeURL, key)
	p.SplitOptions = &core.Options{Threshold: *threshold, OptimizeHuffman: true}
	fmt.Printf("p3proxy: calibrating against %s ...\n", *pspURL)
	res, err := p.Calibrate()
	if err != nil {
		fmt.Fprintf(os.Stderr, "p3proxy: calibration failed: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("p3proxy: calibrated pipeline %s (match %.1f dB)\n", res.Op, res.PSNR)
	fmt.Printf("p3proxy: listening on %s (T=%d)\n", *addr, *threshold)
	if err := http.ListenAndServe(*addr, p); err != nil {
		fmt.Fprintf(os.Stderr, "p3proxy: %v\n", err)
		os.Exit(1)
	}
}
