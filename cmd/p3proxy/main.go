// Command p3proxy runs the client-side trusted proxy against a PSP and a
// blob store. Applications point their photo traffic at the proxy and use
// the PSP's own API; uploads are split and encrypted, downloads are
// reconstructed, transparently.
//
//	p3proxy -addr :9090 -psp http://localhost:8080 -store http://localhost:8081 -key p3.key
//
// Generate the shared key with `p3 keygen`; every authorized recipient's
// proxy must be started with the same key file.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"p3"
	"p3/internal/proxy"
)

func main() {
	addr := flag.String("addr", ":9090", "proxy listen address")
	pspURL := flag.String("psp", "http://localhost:8080", "PSP base URL")
	storeURL := flag.String("store", "http://localhost:8081", "blob store base URL")
	keyPath := flag.String("key", "p3.key", "hex key file (see `p3 keygen`)")
	threshold := flag.Int("t", p3.DefaultThreshold, "splitting threshold T")
	timeout := flag.Duration("timeout", p3.DefaultHTTPTimeout, "PSP and blob store request timeout")
	flag.Parse()

	keyData, err := os.ReadFile(*keyPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "p3proxy: %v\n", err)
		os.Exit(1)
	}
	key, err := p3.ParseKey(string(keyData))
	if err != nil {
		fmt.Fprintf(os.Stderr, "p3proxy: key file %s: %v\n", *keyPath, err)
		os.Exit(1)
	}

	codec, err := p3.New(key, p3.WithThreshold(*threshold))
	if err != nil {
		fmt.Fprintf(os.Stderr, "p3proxy: %v\n", err)
		os.Exit(1)
	}
	p := proxy.New(codec,
		p3.NewHTTPPhotoService(*pspURL, p3.WithHTTPTimeout(*timeout)),
		p3.NewHTTPSecretStore(*storeURL, p3.WithHTTPTimeout(*timeout)))
	fmt.Printf("p3proxy: calibrating against %s ...\n", *pspURL)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	res, err := p.Calibrate(ctx)
	cancel()
	if err != nil {
		fmt.Fprintf(os.Stderr, "p3proxy: calibration failed: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("p3proxy: calibrated pipeline %s (match %.1f dB)\n", res.Op, res.PSNR)
	fmt.Printf("p3proxy: listening on %s (T=%d)\n", *addr, *threshold)
	if err := http.ListenAndServe(*addr, p); err != nil {
		fmt.Fprintf(os.Stderr, "p3proxy: %v\n", err)
		os.Exit(1)
	}
}
