// Command benchreport runs the hot-path benchmark suites (facade, per-stage
// cost, JPEG substrate) with -benchmem and writes a machine-readable
// BENCH_hotpath.json, so every PR's perf trajectory is tracked in-repo
// instead of in someone's scrollback.
//
// The report is no longer micro-benchmarks only: serving-level runs
// recorded by `go run ./cmd/p3load` in BENCH_serving.json (-serving) are
// merged into the written report, so one file carries both halves of the
// trajectory — hot-path cost and behavior under realistic traffic. The
// merged runs are additionally rolled up per scenario (mixed, shardkill,
// video, …) into a serving_summary section: run count plus the latest
// run's throughput and per-op p95/error numbers, so a scenario's
// trajectory — the photo mixes and the video frame-seek workload alike —
// is readable without digging through the raw run array.
//
// Usage, from the repository root:
//
//	go run ./cmd/benchreport                 # writes BENCH_hotpath.json
//	go run ./cmd/benchreport -benchtime 2s -count 3 -out bench.json
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Result is one benchmark's measurements at one GOMAXPROCS setting.
// Repeated -count runs of the same benchmark appear as separate entries.
type Result struct {
	Name        string             `json:"name"`
	GOMAXPROCS  int                `json:"gomaxprocs"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  int64              `json:"b_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Report is the BENCH_hotpath.json document. Serving carries the
// accumulated cmd/p3load runs verbatim (the BENCH_serving.json "runs"
// array), merged in so the serving trajectory travels with the hot-path
// one.
type Report struct {
	GeneratedAt time.Time `json:"generated_at"`
	GoVersion   string    `json:"go_version"`
	GOOS        string    `json:"goos"`
	GOARCH      string    `json:"goarch"`
	// NumCPU is the host's core count; each Result carries the GOMAXPROCS
	// it ran at (the suite runs once per -gomaxprocs value, so sequential
	// cost and scaling are both on record).
	NumCPU         int               `json:"num_cpu"`
	GOMAXPROCSRuns []int             `json:"gomaxprocs_runs"`
	CPU            string            `json:"cpu,omitempty"`
	BenchRegexp    string            `json:"bench_regexp"`
	BenchTime      string            `json:"benchtime"`
	Results        []Result          `json:"results"`
	Serving        json.RawMessage   `json:"serving,omitempty"`
	ServingSummary []ScenarioSummary `json:"serving_summary,omitempty"`
}

// OpSummary condenses one operation of a serving run for the summary.
type OpSummary struct {
	Count  uint64  `json:"count"`
	Errors uint64  `json:"errors"`
	P95Ms  float64 `json:"p95_ms"`
	PerSec float64 `json:"throughput_per_s"`
}

// ScenarioSummary rolls up every accumulated run of one p3load scenario:
// how many runs the trajectory holds and the latest run's headline
// numbers, per operation (photo upload/download/calibrate and
// video_upload/video_download alike).
type ScenarioSummary struct {
	Scenario     string               `json:"scenario"`
	Runs         int                  `json:"runs"`
	LatestPerSec float64              `json:"latest_throughput_per_s"`
	LatestOps    map[string]OpSummary `json:"latest_ops,omitempty"`
	// Durability columns, present when the latest run recorded them:
	// measured storage overhead (disk bytes / logical bytes), post-run
	// repair convergence time, and the zero-data-loss verification result.
	LatestStorageOverhead float64 `json:"latest_storage_overhead,omitempty"`
	LatestRepairS         float64 `json:"latest_repair_s,omitempty"`
	LatestDataLoss        int     `json:"latest_data_loss_objects,omitempty"`
	LatestVerified        int     `json:"latest_verified_objects,omitempty"`
}

// benchLine matches `BenchmarkName-8   123   456 ns/op   1 MB/s ...`; the
// -N GOMAXPROCS suffix is stripped from the name.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(.*)$`)

func main() {
	bench := flag.String("bench", "^(BenchmarkFacade_|BenchmarkCost_|BenchmarkJPEG_|BenchmarkProxy_)", "benchmark regexp passed to go test -bench")
	benchtime := flag.String("benchtime", "1s", "per-benchmark time passed to go test -benchtime")
	count := flag.Int("count", 1, "repetitions passed to go test -count")
	pkg := flag.String("pkg", ".", "package to benchmark")
	out := flag.String("out", "BENCH_hotpath.json", "output JSON path")
	serving := flag.String("serving", "BENCH_serving.json",
		"cmd/p3load trajectory file to merge into the report ('' = skip)")
	gomaxprocs := flag.String("gomaxprocs", "",
		"comma-separated GOMAXPROCS values to run the suite at (default \"1,N\" with N = max(NumCPU, 8))")
	flag.Parse()

	procsList, err := parseProcsList(*gomaxprocs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchreport: -gomaxprocs: %v\n", err)
		os.Exit(1)
	}

	report := Report{
		GeneratedAt:    time.Now().UTC().Truncate(time.Second),
		GoVersion:      runtime.Version(),
		GOOS:           runtime.GOOS,
		GOARCH:         runtime.GOARCH,
		NumCPU:         runtime.NumCPU(),
		GOMAXPROCSRuns: procsList,
		BenchRegexp:    *bench,
		BenchTime:      *benchtime,
	}
	for _, procs := range procsList {
		args := []string{
			"test", *pkg,
			"-run", "^$",
			"-bench", *bench,
			"-benchmem",
			"-benchtime", *benchtime,
			"-count", strconv.Itoa(*count),
		}
		cmd := exec.Command("go", args...)
		cmd.Env = append(os.Environ(), "GOMAXPROCS="+strconv.Itoa(procs))
		cmd.Stderr = os.Stderr
		var stdout bytes.Buffer
		cmd.Stdout = &stdout
		fmt.Fprintf(os.Stderr, "benchreport: GOMAXPROCS=%d go %s\n", procs, strings.Join(args, " "))
		if err := cmd.Run(); err != nil {
			fmt.Fprintf(os.Stderr, "benchreport: go test failed: %v\n%s\n", err, stdout.Bytes())
			os.Exit(1)
		}
		parsed := 0
		for _, line := range strings.Split(stdout.String(), "\n") {
			line = strings.TrimSpace(line)
			if cpu, ok := strings.CutPrefix(line, "cpu: "); ok {
				report.CPU = cpu
				continue
			}
			m := benchLine.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			iters, err := strconv.ParseInt(m[2], 10, 64)
			if err != nil {
				continue
			}
			r := Result{Name: m[1], GOMAXPROCS: procs, Iterations: iters}
			if err := parseMeasurements(m[3], &r); err != nil {
				fmt.Fprintf(os.Stderr, "benchreport: skipping %q: %v\n", line, err)
				continue
			}
			report.Results = append(report.Results, r)
			parsed++
		}
		if parsed == 0 {
			fmt.Fprintf(os.Stderr, "benchreport: no benchmark results parsed at GOMAXPROCS=%d from:\n%s\n",
				procs, stdout.String())
			os.Exit(1)
		}
	}
	if *serving != "" {
		if runs, err := loadServingRuns(*serving); err != nil {
			fmt.Fprintf(os.Stderr, "benchreport: %s: %v (continuing without serving runs)\n", *serving, err)
		} else if runs != nil {
			report.Serving = runs
			report.ServingSummary = summarizeServing(runs)
			fmt.Fprintf(os.Stderr, "benchreport: merged serving runs from %s (%d scenarios)\n",
				*serving, len(report.ServingSummary))
		}
	}

	data, err := json.MarshalIndent(&report, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchreport: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchreport: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchreport: wrote %d results to %s\n", len(report.Results), *out)
}

// parseProcsList parses the -gomaxprocs comma list. Empty selects the
// default pair: 1 (the honest sequential cost, where pools run inline) and
// max(NumCPU, 8) (the scaling story, oversubscribed on small hosts so the
// parallel plumbing is still exercised). Duplicates are dropped preserving
// order.
func parseProcsList(s string) ([]int, error) {
	var vals []int
	if s == "" {
		vals = []int{1, max(runtime.NumCPU(), 8)}
	} else {
		for _, f := range strings.Split(s, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || v < 1 {
				return nil, fmt.Errorf("bad GOMAXPROCS value %q", f)
			}
			vals = append(vals, v)
		}
	}
	seen := map[int]bool{}
	out := vals[:0]
	for _, v := range vals {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out, nil
}

// loadServingRuns reads a BENCH_serving.json document and returns its
// "runs" array, nil when the file does not exist (p3load has not run yet).
func loadServingRuns(path string) (json.RawMessage, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var doc struct {
		Runs json.RawMessage `json:"runs"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, err
	}
	if len(doc.Runs) == 0 {
		return nil, nil
	}
	return doc.Runs, nil
}

// summarizeServing rolls the raw runs array up per scenario. Runs are
// assumed chronological (p3load appends), so the last run of each scenario
// is its latest state; scenarios appear in order of first occurrence.
func summarizeServing(raw json.RawMessage) []ScenarioSummary {
	var runs []struct {
		Config struct {
			Scenario string `json:"scenario"`
		} `json:"config"`
		TotalPerSec     float64              `json:"total_throughput_per_s"`
		Ops             map[string]OpSummary `json:"ops"`
		StorageOverhead float64              `json:"storage_overhead"`
		RepairS         float64              `json:"repair_s"`
		DataLoss        int                  `json:"data_loss_objects"`
		Verified        int                  `json:"verified_objects"`
	}
	if err := json.Unmarshal(raw, &runs); err != nil {
		fmt.Fprintf(os.Stderr, "benchreport: unparseable serving runs: %v\n", err)
		return nil
	}
	index := map[string]int{}
	var summaries []ScenarioSummary
	for _, run := range runs {
		i, ok := index[run.Config.Scenario]
		if !ok {
			i = len(summaries)
			index[run.Config.Scenario] = i
			summaries = append(summaries, ScenarioSummary{Scenario: run.Config.Scenario})
		}
		s := &summaries[i]
		s.Runs++
		s.LatestPerSec = run.TotalPerSec
		s.LatestOps = run.Ops
		s.LatestStorageOverhead = run.StorageOverhead
		s.LatestRepairS = run.RepairS
		s.LatestDataLoss = run.DataLoss
		s.LatestVerified = run.Verified
	}
	return summaries
}

// parseMeasurements consumes the "value unit value unit ..." tail of a
// benchmark line. The three standard units fill the typed fields; everything
// else (MB/s, custom b.ReportMetric units) lands in Metrics.
func parseMeasurements(tail string, r *Result) error {
	fields := strings.Fields(tail)
	if len(fields)%2 != 0 {
		return fmt.Errorf("odd measurement field count in %q", tail)
	}
	for i := 0; i < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return fmt.Errorf("bad value %q: %w", fields[i], err)
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			r.BytesPerOp = int64(v)
		case "allocs/op":
			r.AllocsPerOp = int64(v)
		default:
			if r.Metrics == nil {
				r.Metrics = make(map[string]float64)
			}
			r.Metrics[unit] = v
		}
	}
	return nil
}
