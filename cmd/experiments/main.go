// Command experiments regenerates the tables and figures of the paper's
// evaluation (§5). Each figure prints as an aligned ASCII table (or CSV
// with -csv); Fig. 7 writes JPEG files.
//
// Usage:
//
//	experiments -fig all            # everything (slow)
//	experiments -fig 5 -fig 8a      # selected figures
//	experiments -fig 7 -out ./fig7  # canonical public/secret JPEGs
//	experiments -quick              # reduced corpus sizes
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"p3/internal/experiments"
)

type figFlag []string

func (f *figFlag) String() string { return strings.Join(*f, ",") }
func (f *figFlag) Set(v string) error {
	*f = append(*f, strings.ToLower(v))
	return nil
}

func main() {
	var figs figFlag
	flag.Var(&figs, "fig", "figure to regenerate (5, 6, 7, 8a, 8b, 8c, 8d, 10, recon, cost, guess, ablations, all); repeatable")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	quick := flag.Bool("quick", false, "smaller corpora for a fast pass")
	out := flag.String("out", "fig7_out", "output directory for -fig 7 JPEGs")
	flag.Parse()
	if len(figs) == 0 {
		figs = figFlag{"all"}
	}

	n := 0 // 0 = experiment defaults
	scenes, subjects := 0, 0
	if *quick {
		n, scenes, subjects = 6, 6, 10
	}

	want := map[string]bool{}
	for _, f := range figs {
		want[f] = true
	}
	all := want["all"]
	emit := func(t *experiments.Table, err error) {
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		if *csv {
			fmt.Println(t.CSV())
		} else {
			fmt.Println(t.String())
		}
	}

	if all || want["5"] {
		emit(experiments.Fig5SizeVsThreshold(experiments.SIPI, nil, n))
		emit(experiments.Fig5SizeVsThreshold(experiments.INRIA, nil, n))
	}
	if all || want["6"] {
		emit(experiments.Fig6PSNRVsThreshold(experiments.SIPI, nil, n))
		emit(experiments.Fig6PSNRVsThreshold(experiments.INRIA, nil, n))
	}
	if all || want["7"] {
		pairs, err := experiments.Fig7Canonical()
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		for _, p := range pairs {
			pub := filepath.Join(*out, fmt.Sprintf("public_T%d.jpg", p.Threshold))
			sec := filepath.Join(*out, fmt.Sprintf("secret_T%d.jpg", p.Threshold))
			if err := os.WriteFile(pub, p.PublicJPEG, 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
				os.Exit(1)
			}
			if err := os.WriteFile(sec, p.SecretJPEG, 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("fig7: wrote %s (%d bytes) and %s (%d bytes)\n", pub, len(p.PublicJPEG), sec, len(p.SecretJPEG))
		}
		fmt.Println()
	}
	if all || want["8a"] {
		emit(experiments.Fig8aEdgeDetection(nil, n))
	}
	if all || want["8b"] {
		emit(experiments.Fig8bFaceDetection(nil, scenes))
	}
	if all || want["8c"] {
		emit(experiments.Fig8cSIFT(nil, n))
	}
	if all || want["8d"] {
		emit(experiments.Fig8dFaceRecognition(nil, subjects, 0))
	}
	if all || want["10"] {
		emit(experiments.Fig10Bandwidth(nil, n))
	}
	if all || want["recon"] {
		emit(experiments.ReconstructionAccuracy(n))
	}
	if all || want["cost"] {
		emit(experiments.ProcessingCost(0))
	}
	if all || want["guess"] {
		emit(experiments.ThresholdGuessing(nil, n))
	}
	if all || want["ablations"] {
		emit(experiments.AblationSignCorrection(0, n))
		emit(experiments.AblationDCPlacement(0, n))
		emit(experiments.AblationReconDomain(0, n))
		emit(experiments.AblationSecretEntropy(0, n))
	}
}
