// Command docgate fails the build when an exported identifier in the root
// p3 package lacks a doc comment. The root package is the library's public
// contract; an undocumented export there is an API the next user has to
// reverse-engineer. CI runs it next to gofmt and vet:
//
//	go run ./cmd/docgate            # checks the package in the cwd
//	go run ./cmd/docgate ./subpkg   # or an explicit directory
//
// Grouped declarations are accepted when the group is documented (idiomatic
// for const blocks); methods count as exported only when both the receiver
// type and the method name are exported. Test files are skipped.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"sort"
	"strings"
)

// finding is one undocumented export.
type finding struct {
	pos  token.Position
	what string
}

func main() {
	dir := "."
	if len(os.Args) > 1 {
		dir = os.Args[1]
	}
	findings, err := check(dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "docgate: %v\n", err)
		os.Exit(2)
	}
	if len(findings) == 0 {
		fmt.Println("docgate: every exported identifier is documented")
		return
	}
	sort.Slice(findings, func(a, b int) bool {
		if findings[a].pos.Filename != findings[b].pos.Filename {
			return findings[a].pos.Filename < findings[b].pos.Filename
		}
		return findings[a].pos.Line < findings[b].pos.Line
	})
	fmt.Fprintf(os.Stderr, "docgate: %d undocumented exported identifier(s):\n", len(findings))
	for _, f := range findings {
		fmt.Fprintf(os.Stderr, "  %s:%d: %s\n", f.pos.Filename, f.pos.Line, f.what)
	}
	os.Exit(1)
}

// check parses every non-test Go file in dir and returns the undocumented
// exports.
func check(dir string) ([]finding, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var findings []finding
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				findings = append(findings, checkDecl(fset, decl)...)
			}
		}
	}
	return findings, nil
}

func checkDecl(fset *token.FileSet, decl ast.Decl) []finding {
	var findings []finding
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() || !exportedReceiver(d) {
			return nil
		}
		if d.Doc == nil {
			what := "func " + d.Name.Name
			if d.Recv != nil {
				what = fmt.Sprintf("method (%s).%s", receiverType(d), d.Name.Name)
			}
			findings = append(findings, finding{fset.Position(d.Pos()), what})
		}
	case *ast.GenDecl:
		// A documented group covers its specs: `// The supported kernels.`
		// above a const block documents every kernel.
		groupDoc := d.Doc != nil
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if s.Name.IsExported() && !groupDoc && s.Doc == nil && s.Comment == nil {
					findings = append(findings, finding{fset.Position(s.Pos()), "type " + s.Name.Name})
				}
			case *ast.ValueSpec:
				if groupDoc || s.Doc != nil || s.Comment != nil {
					continue
				}
				for _, name := range s.Names {
					if name.IsExported() {
						kind := map[token.Token]string{token.CONST: "const", token.VAR: "var"}[d.Tok]
						findings = append(findings, finding{fset.Position(s.Pos()), kind + " " + name.Name})
					}
				}
			}
		}
	}
	return findings
}

// exportedReceiver reports whether a method's receiver type is exported
// (true for plain functions). Methods on unexported types are not part of
// the public API surface.
func exportedReceiver(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	return ast.IsExported(receiverType(d))
}

// receiverType returns the receiver's base type name, stripping pointers
// and type parameters.
func receiverType(d *ast.FuncDecl) string {
	t := d.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr:
			t = tt.X
		case *ast.IndexListExpr:
			t = tt.X
		case *ast.Ident:
			return tt.Name
		default:
			return ""
		}
	}
}
