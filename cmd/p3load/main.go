// Command p3load drives realistic traffic at a real proxy + stores stack
// and reports serving-level numbers: latency percentiles, throughput,
// cache efficiency, and per-shard health. Micro-benchmarks time one
// operation in a vacuum; p3load measures the system the way workload
// traces say users hit it — skewed (zipfian) photo popularity, a mixed
// upload:download:calibrate op stream, a spread of variant queries, bursty
// open-loop arrivals, and (optionally) a shard failing mid-run.
//
// The stack under test is the real thing wired in-process: a Facebook-like
// PSP served over HTTP, three disk shards under a consistent-hash
// ShardedSecretStore with 2-way replication, and the instrumented
// internal/proxy serving through its bounded coalescing caches.
//
// Usage, from the repository root:
//
//	go run ./cmd/p3load -scenario mixed         # the default workload
//	go run ./cmd/p3load -scenario smoke         # seconds-long CI gate
//	go run ./cmd/p3load -scenario burst         # open-loop arrival bursts
//	go run ./cmd/p3load -scenario shardkill     # kill+revive a shard mid-run
//	go run ./cmd/p3load -scenario shardkill-ec  # erasure store, kill TWO shards
//	go run ./cmd/p3load -scenario zipf-hot      # near-single-photo skew
//	go run ./cmd/p3load -scenario uniform       # no popularity skew
//	go run ./cmd/p3load -scenario video         # MJPEG clips + frame seeks
//	go run ./cmd/p3load -scenario recalibrate   # forced epoch flips mid-run
//	go run ./cmd/p3load -scenario storm         # one client ramps to 50x fair share
//	go run ./cmd/p3load -scenario dup-heavy     # duplicate-skewed corpus through dedup
//
// The dup-heavy scenario replays a duplicate-skewed corpus (a few base
// images uploaded many times over, exact copies and near-dup re-encodes
// mixed) through a content-addressed dedup layer (internal/dedup;
// -dedup wires it into any scenario) with perceptual-hash similarity
// queries in the op mix (the 6th -mix weight). The post-run
// verification downloads every logical ID through cold caches and
// requires byte-identity within each content group, then a dedup scrub
// must find the refcount invariants intact; the entry records storage
// saved, dup hit rate, similarity-query latency, and the similar-hit
// rate. Combine with -store-kind erasure -shard-kill -kill-shards 2 for
// the dedup-under-partial-outage drill.
//
// The storm scenario turns on the proxy's admission layer
// (internal/admission; -max-inflight, -queue-depth, -client-rps,
// -storm-clamp wire it into any scenario) and runs per-client open-loop
// dispatchers: -clients well-behaved victims plus one attacker that ramps
// to -attacker-mult times its fair share in the middle of the run. The
// run is gated on the admission contract: the storm detector clamps the
// attacker, the victims see zero errors, and the victims' download p99
// during the storm stays within 2x their steady-state p99.
//
// Any run can record its arrival process with -trace-record FILE: every
// dispatched op is logged with its offset, client key, and target
// (internal/trace, JSONL). -trace-replay FILE replays a recorded trace
// open-loop against a fresh stack — at recorded speed, time-scaled
// (-trace-speed 2), or as fast as possible (-trace-speed 0) — rebuilding
// the corpus from the trace header so recorded indices address
// equivalent photos. Record and replay compose, so a replayed run can
// re-record itself for drift checks.
//
// The store topology is itself a knob: -store-kind sharded|erasure,
// -shards N, -replicas R (replication) or -ec-k/-ec-n (erasure coding),
// -kill-shards for how many shards the fault toggle takes down, and
// -scrub-interval for the erasure store's self-healing daemon. Erasure
// runs additionally record a recovery curve (degraded reads and repair
// progress over time), the post-revive repair time, the measured storage
// overhead (shard bytes on disk / logical secret bytes), and a post-run
// zero-data-loss verification over the whole corpus — the numbers behind
// the replication-vs-erasure experiment in EXPERIMENTS.md.
//
// The recalibrate scenario exercises the background-calibration subsystem:
// -recalibrations forced full recalibrations fire at evenly spaced points
// mid-run while download traffic keeps flowing, and every download is
// attributed to a steady or during-recalibration bucket (sampled from the
// proxy's in-flight flag around the request) so the report shows what an
// epoch flip costs the serving path. -warm-topk sets how many hot variants
// the proxy pre-warms after each flip; -max-download-p99 turns the
// download p99 into a gate (the CI contract: recalibration must not
// detonate tail latency).
//
// (`-preset` is an alias for `-scenario`.) The video scenario exercises
// the §4.2 extension end to end: P3MJ clips with a spread of frame counts
// are uploaded through the proxy (frame-parallel SplitVideo, both parts
// onto the disk shards) and downloaded mostly as zipf-popular single-frame
// seeks (`?frame=N`), with an occasional whole-clip join — the mixed-media
// serving-trace shape.
//
// Every preset is a set of flag defaults; explicit flags override, so
// `-scenario mixed -duration 30s -workers 32` scales the same mix up.
// Each run appends an entry to BENCH_serving.json (-out), so the serving
// perf trajectory accumulates across PRs next to BENCH_hotpath.json; see
// EXPERIMENTS.md for how the scenarios map onto experiments.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"net/http/httptest"
	"net/url"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"p3"
	"p3/internal/admission"
	"p3/internal/cache"
	"p3/internal/dataset"
	"p3/internal/dedup"
	"p3/internal/jpegx"
	"p3/internal/metrics"
	"p3/internal/proxy"
	"p3/internal/psp"
	"p3/internal/similarity"
	"p3/internal/trace"
)

// config is one run's resolved parameters.
type config struct {
	Scenario  string        `json:"scenario"`
	Mode      string        `json:"mode"` // "closed" or "open"
	Duration  time.Duration `json:"-"`
	DurationS float64       `json:"duration_s"`
	Workers   int           `json:"workers"`
	Rate      float64       `json:"rate_per_s"` // open-loop arrival rate
	Photos    int           `json:"photos"`     // pre-populated corpus size
	Zipf      float64       `json:"zipf_s"`     // popularity skew; 0 = uniform
	Mix       string        `json:"mix"`        // upload:download:calibrate[:vupload:vdownload] weights
	Dynamic   float64       `json:"dynamic"`    // fraction of dynamic-variant queries
	Burst     bool          `json:"burst"`      // open-loop rate bursts
	ShardKill bool          `json:"shard_kill"` // kill+revive shard 0 mid-run
	Seed      int64         `json:"seed"`
	// Video-workload shape: Clips clips are pre-populated with frame
	// counts spread over [ClipFramesMin, ClipFramesMax] (the clip-size
	// distribution); video downloads seek a zipf(FrameZipf)-popular frame
	// (earlier frames hotter, like preview scrubbing), except a FullClip
	// fraction that joins the whole clip.
	Clips         int     `json:"clips,omitempty"`
	ClipFramesMin int     `json:"clip_frames_min,omitempty"`
	ClipFramesMax int     `json:"clip_frames_max,omitempty"`
	FrameZipf     float64 `json:"frame_zipf,omitempty"`
	FullClip      float64 `json:"full_clip,omitempty"`
	// Gate makes any op error fail the run (the CI smoke contract).
	Gate bool `json:"gate,omitempty"`
	// SecretCache is the proxy's secret-cache budget. The shardkill presets
	// set it to 1 byte (retention off) so downloads actually exercise the
	// store's degraded-read and repair paths instead of being absorbed by
	// the proxy cache.
	SecretCache int64 `json:"secret_cache_bytes"`
	// Store topology. StoreKind selects replication ("sharded", the
	// default) or Reed-Solomon striping ("erasure") over ShardCount disk
	// shards; Replicas is the replication factor, ECK/ECN the erasure
	// scheme. KillShards is how many shards the ShardKill fault takes down
	// at once (1 kills shard 0; 2 kills shards 0 and 1; ...).
	// ScrubInterval runs the erasure store's self-healing daemon during the
	// run (0 leaves repair to the explicit post-run convergence pass).
	StoreKind      string        `json:"store_kind"`
	ShardCount     int           `json:"shards"`
	Replicas       int           `json:"replicas,omitempty"`
	ECK            int           `json:"ec_k,omitempty"`
	ECN            int           `json:"ec_n,omitempty"`
	KillShards     int           `json:"kill_shards,omitempty"`
	ScrubInterval  time.Duration `json:"-"`
	ScrubIntervalS float64       `json:"scrub_interval_s,omitempty"`
	// Recalibrations forces that many full (epoch-flipping) recalibrations
	// at evenly spaced points mid-run, while download traffic keeps flowing
	// against the previous epoch. WarmTopK is the proxy's post-flip
	// pre-warm budget. MaxDownP99 (0 = off) fails the run if the overall
	// download p99 exceeds it — the recalibration-smoke CI gate.
	Recalibrations int           `json:"recalibrations,omitempty"`
	WarmTopK       int           `json:"warm_topk,omitempty"`
	MaxDownP99     time.Duration `json:"-"`
	MaxDownP99Ms   float64       `json:"max_download_p99_ms,omitempty"`
	// Admission control: MaxInflight > 0 wires an internal/admission
	// controller into the proxy (concurrency bound + bounded priority
	// queues); QueueDepth, ClientRPS, and StormClamp tune it (0 = the
	// package defaults; ClientRPS 0 = no per-client buckets).
	MaxInflight int     `json:"max_inflight,omitempty"`
	QueueDepth  int     `json:"queue_depth,omitempty"`
	ClientRPS   float64 `json:"client_rps,omitempty"`
	StormClamp  float64 `json:"storm_clamp,omitempty"`
	// Storm-mode shape: Clients victim clients each offered their fair
	// share of Rate, plus one attacker that ramps to AttackerMult times
	// its fair share during [40%, 70%] of the run.
	Clients      int     `json:"clients,omitempty"`
	AttackerMult float64 `json:"attacker_mult,omitempty"`
	// Trace recording/replay (see internal/trace).
	TraceRecord string  `json:"trace_record,omitempty"`
	TraceReplay string  `json:"trace_replay,omitempty"`
	TraceSpeed  float64 `json:"trace_speed,omitempty"`
	// Dedup-workload shape: Dedup wires a content-addressed dedup layer
	// (internal/dedup) between the proxy and the PSP, and DupUnique sets
	// how many distinct base images the upload pool is built from — each
	// also present as a near-duplicate re-encode, so a corpus of N photos
	// carries ~N/(2*DupUnique) exact copies of each payload. SimilarD is
	// the hamming radius "similar" ops query at.
	Dedup     bool `json:"dedup,omitempty"`
	DupUnique int  `json:"dup_unique,omitempty"`
	SimilarD  int  `json:"similar_d,omitempty"`
}

// scenarios are named flag-default presets. Explicit flags override.
var scenarios = map[string]config{
	"smoke": {Mode: "closed", Duration: 2 * time.Second, Workers: 4, Rate: 50,
		Photos: 4, Zipf: 1.2, Mix: "1:20:0", Dynamic: 0.3, Gate: true},
	"video": {Mode: "closed", Duration: 10 * time.Second, Workers: 8, Rate: 50,
		Photos: 1, Zipf: 1.2, Mix: "0:0:0:1:30", Dynamic: 0,
		Clips: 6, ClipFramesMin: 4, ClipFramesMax: 12, FrameZipf: 1.3, FullClip: 0.1},
	"mixed": {Mode: "closed", Duration: 10 * time.Second, Workers: 8, Rate: 100,
		Photos: 16, Zipf: 1.2, Mix: "1:40:0.2", Dynamic: 0.4},
	"zipf-hot": {Mode: "closed", Duration: 10 * time.Second, Workers: 8, Rate: 100,
		Photos: 64, Zipf: 2.5, Mix: "0:1:0", Dynamic: 0.2},
	"uniform": {Mode: "closed", Duration: 10 * time.Second, Workers: 8, Rate: 100,
		Photos: 64, Zipf: 0, Mix: "0:1:0", Dynamic: 0.2},
	"burst": {Mode: "open", Duration: 15 * time.Second, Workers: 8, Rate: 60,
		Photos: 16, Zipf: 1.2, Mix: "1:40:0", Dynamic: 0.4, Burst: true},
	"shardkill": {Mode: "closed", Duration: 12 * time.Second, Workers: 8, Rate: 100,
		Photos: 16, Zipf: 1.2, Mix: "1:20:0", Dynamic: 0.3, ShardKill: true, SecretCache: 1},
	// The erasure acceptance drill: 4-of-6 Reed-Solomon over 6 disk shards
	// loses TWO shards mid-run and must serve every byte regardless, while
	// the 500ms scrubber rebuilds the dead shards' shares the moment they
	// revive. Compare against `-scenario shardkill -shards 3 -replicas 3`
	// for the same fault tolerance at twice the storage.
	"shardkill-ec": {Mode: "closed", Duration: 12 * time.Second, Workers: 8, Rate: 100,
		Photos: 16, Zipf: 1.2, Mix: "1:20:0", Dynamic: 0.3, ShardKill: true, SecretCache: 1,
		StoreKind: "erasure", ShardCount: 6, ECK: 4, ECN: 6, KillShards: 2,
		ScrubInterval: 500 * time.Millisecond},
	// The calibration-lifecycle drill: zipf-skewed download traffic with two
	// forced epoch flips mid-run. Downloads must keep serving (stale, from
	// the previous epoch) through each flip, and the post-flip pre-warm of
	// the 32 hottest variants should keep the hot set from going cold.
	// Four workers (not eight): the full sweep shares CPU with the
	// workload, and the preset must leave it enough headroom to land both
	// flips while traffic is still flowing even on small machines.
	"recalibrate": {Mode: "closed", Duration: 16 * time.Second, Workers: 4, Rate: 100,
		Photos: 16, Zipf: 1.2, Mix: "1:40:0", Dynamic: 0.3,
		Recalibrations: 2, WarmTopK: 32},
	// The admission acceptance drill: eight victims and one attacker share
	// a 90/s offered load fairly until the attacker ramps to 50x its fair
	// share mid-run. The storm detector must clamp the attacker (storm-
	// reason sheds > 0) while every victim request keeps succeeding with a
	// download p99 within 2x of steady state. The per-client buckets stay
	// off (ClientRPS 0): the point is the *unconfigured* storm path — no
	// operator pre-declared the attacker's identity or rate.
	"storm": {Mode: "storm", Duration: 12 * time.Second, Workers: 8, Rate: 90,
		Photos: 12, Zipf: 1.2, Mix: "0:1:0", Dynamic: 0.15, Gate: true,
		Clients: 8, AttackerMult: 50,
		MaxInflight: 8, QueueDepth: 256, StormClamp: 4},
	// The duplicate-heavy serving drill: a corpus where every payload is
	// uploaded many times over (6 base images, each also as a near-dup
	// re-encode), through a content-addressed dedup layer, with similarity
	// queries in the mix. The post-run verification downloads every
	// logical ID and requires byte-identity within each content group —
	// dedup sharing must be invisible to the application — and the entry
	// records storage saved, dup hit rate, and the similarity-query tail.
	"dup-heavy": {Mode: "closed", Duration: 10 * time.Second, Workers: 8, Rate: 100,
		Photos: 48, Zipf: 1.2, Mix: "4:20:0:0:0:3", Dynamic: 0.3,
		Dedup: true, DupUnique: 6, SimilarD: 10},
}

// opKind indexes the three operation types.
type opKind int

const (
	opUpload opKind = iota
	opDownload
	opCalibrate
	opVideoUpload
	opVideoDownload
	opSimilar
	numOps
)

func (k opKind) String() string {
	return [...]string{"upload", "download", "calibrate", "video_upload", "video_download", "similar"}[k]
}

// opFromString resolves a trace event's op name (the inverse of String).
func opFromString(s string) (opKind, bool) {
	for k := opKind(0); k < numOps; k++ {
		if k.String() == s {
			return k, true
		}
	}
	return 0, false
}

// clampRank turns a trace event's target index into a popularity rank: a
// hand-edited (or hostile) trace may carry negatives, which must not
// panic the harness.
func clampRank(v int) uint64 {
	if v < 0 {
		return 0
	}
	return uint64(v)
}

// opRecorder aggregates one operation type's client-observed results.
type opRecorder struct {
	hist   metrics.Histogram
	errs   atomic.Uint64
	maxNs  atomic.Int64
	sample sync.Once
	err    atomic.Value // first error, for the report
}

func (r *opRecorder) record(d time.Duration, err error) {
	r.hist.Observe(d)
	for {
		old := r.maxNs.Load()
		if int64(d) <= old || r.maxNs.CompareAndSwap(old, int64(d)) {
			break
		}
	}
	if err != nil {
		r.errs.Add(1)
		r.sample.Do(func() { r.err.Store(err.Error()) })
	}
}

// opReport is one operation type's section of the JSON entry.
type opReport struct {
	Count       uint64  `json:"count"`
	Errors      uint64  `json:"errors"`
	P50Ms       float64 `json:"p50_ms"`
	P95Ms       float64 `json:"p95_ms"`
	P99Ms       float64 `json:"p99_ms"`
	MeanMs      float64 `json:"mean_ms"`
	MaxMs       float64 `json:"max_ms"`
	PerSec      float64 `json:"throughput_per_s"`
	SampleError string  `json:"sample_error,omitempty"`
}

func (r *opRecorder) report(elapsed time.Duration) opReport {
	s := r.hist.Snapshot()
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	maxMs := float64(r.maxNs.Load()) / 1e6
	// The log-scale buckets put a percentile estimate anywhere inside a
	// factor-of-2 bucket; the true value can never exceed the observed max,
	// so clamp to keep the report self-consistent.
	pct := func(d time.Duration) float64 { return min(ms(d), maxMs) }
	rep := opReport{
		Count:  s.Count,
		Errors: r.errs.Load(),
		P50Ms:  pct(s.P50),
		P95Ms:  pct(s.P95),
		P99Ms:  pct(s.P99),
		MeanMs: ms(s.Mean()),
		MaxMs:  maxMs,
		PerSec: float64(s.Count) / elapsed.Seconds(),
	}
	if e, ok := r.err.Load().(string); ok {
		rep.SampleError = e
	}
	return rep
}

// faultyStore wraps a shard with a kill switch for the shard-kill fault
// toggle: while down, every operation fails with a non-NotFound error, so
// the sharded store treats it as a degraded replica (fall through + repair
// later), not a missing blob.
type faultyStore struct {
	inner p3.SecretStore
	down  atomic.Bool
}

var errShardDown = errors.New("p3load: shard down (injected fault)")

func (f *faultyStore) PutSecret(ctx context.Context, id string, blob []byte) error {
	if f.down.Load() {
		return errShardDown
	}
	return f.inner.PutSecret(ctx, id, blob)
}

func (f *faultyStore) GetSecret(ctx context.Context, id string) ([]byte, error) {
	if f.down.Load() {
		return nil, errShardDown
	}
	return f.inner.GetSecret(ctx, id)
}

func (f *faultyStore) DeleteSecret(ctx context.Context, id string) error {
	if f.down.Load() {
		return errShardDown
	}
	if d, ok := f.inner.(p3.SecretDeleter); ok {
		return d.DeleteSecret(ctx, id)
	}
	return nil
}

// ListSecrets forwards the inventory walk the erasure store's scrubber
// relies on; a down shard is unlistable, exactly like a real outage.
func (f *faultyStore) ListSecrets(ctx context.Context) ([]string, error) {
	if f.down.Load() {
		return nil, errShardDown
	}
	if l, ok := f.inner.(p3.SecretLister); ok {
		return l.ListSecrets(ctx)
	}
	return nil, nil
}

// corpus is the shared, growing set of uploaded photo IDs workers pick
// popularity-weighted targets from.
type corpus struct {
	mu  sync.RWMutex
	ids []string
}

func (c *corpus) add(id string) {
	c.mu.Lock()
	c.ids = append(c.ids, id)
	c.mu.Unlock()
}

// pick maps a popularity rank onto a photo ID. rank 0 is the most popular.
func (c *corpus) pick(rank uint64) string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.ids[int(rank)%len(c.ids)]
}

// snapshot copies the current ID set (for the post-run verification walk).
func (c *corpus) snapshot() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return append([]string(nil), c.ids...)
}

// clipRef names one uploaded clip and how many frames it has (frame seeks
// need the count to stay in range).
type clipRef struct {
	id     string
	frames int
}

// videoCorpus is the growing set of uploaded clips.
type videoCorpus struct {
	mu    sync.RWMutex
	clips []clipRef
}

func (c *videoCorpus) add(id string, frames int) {
	c.mu.Lock()
	c.clips = append(c.clips, clipRef{id: id, frames: frames})
	c.mu.Unlock()
}

// pick maps a popularity rank onto a clip. rank 0 is the most popular.
func (c *videoCorpus) pick(rank uint64) clipRef {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.clips[int(rank)%len(c.clips)]
}

// parseMix parses the upload:download:calibrate[:vupload:vdownload[:similar]]
// weight string. The trailing weights are optional (0 when absent), so
// the photo-only presets keep their historical 3-part form and the video
// presets their 5-part form.
func parseMix(mix string) (weights [numOps]float64, total float64, err error) {
	parts := strings.Split(mix, ":")
	if len(parts) != 3 && len(parts) != 5 && len(parts) != int(numOps) {
		return weights, 0, fmt.Errorf("bad -mix %q (want upload:download:calibrate[:vupload:vdownload[:similar]] weights)", mix)
	}
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil || v < 0 || math.IsInf(v, 0) || math.IsNaN(v) {
			return weights, 0, fmt.Errorf("bad -mix weight %q", p)
		}
		weights[i] = v
		total += v
	}
	if total == 0 || math.IsInf(total, 0) {
		return weights, 0, fmt.Errorf("-mix %q has unusable total weight", mix)
	}
	return weights, total, nil
}

// workload generates one worker's op stream deterministically from its own
// rng (no shared locks on the decision path).
type workload struct {
	rng       *rand.Rand
	zipf      *rand.Zipf // photo popularity
	clipZipf  *rand.Zipf // clip popularity
	frameZipf *rand.Zipf // frame-seek popularity within a clip
	photos    int
	clips     int
	weights   [numOps]float64
	totalW    float64
	dynamic   float64
	fullClip  float64
	jpegPool  [][]byte // pre-encoded upload payloads
	clipPool  []poolClip
}

// poolClip is one pre-encoded upload clip and its frame count.
type poolClip struct {
	bytes  []byte
	frames int
}

func newWorkload(cfg config, seed int64, jpegPool [][]byte, clipPool []poolClip) (*workload, error) {
	w := &workload{
		rng:      rand.New(rand.NewSource(seed)),
		photos:   cfg.Photos,
		clips:    cfg.Clips,
		dynamic:  cfg.Dynamic,
		fullClip: cfg.FullClip,
		jpegPool: jpegPool,
		clipPool: clipPool,
	}
	var err error
	if w.weights, w.totalW, err = parseMix(cfg.Mix); err != nil {
		return nil, err
	}
	if cfg.Zipf > 1 {
		// rand.Zipf yields ranks in [0, imax] with P(k) ∝ 1/(k+1)^s — the
		// skewed popularity serving traces show.
		w.zipf = rand.NewZipf(w.rng, cfg.Zipf, 1, uint64(max(cfg.Photos-1, 1)))
		w.clipZipf = rand.NewZipf(w.rng, cfg.Zipf, 1, uint64(max(cfg.Clips-1, 1)))
	}
	if cfg.FrameZipf > 1 && cfg.ClipFramesMax > 1 {
		// Frame seeks skew toward early frames (rank 0 = frame 0), the
		// preview-scrubbing shape; ranks past a clip's end wrap.
		w.frameZipf = rand.NewZipf(w.rng, cfg.FrameZipf, 1, uint64(cfg.ClipFramesMax-1))
	}
	return w, nil
}

func (w *workload) nextOp() opKind {
	x := w.rng.Float64() * w.totalW
	for k := opKind(0); k < numOps-1; k++ {
		if x < w.weights[k] {
			return k
		}
		x -= w.weights[k]
	}
	return numOps - 1
}

func (w *workload) rank() uint64 {
	if w.zipf != nil {
		return w.zipf.Uint64()
	}
	return uint64(w.rng.Intn(max(w.photos, 1)))
}

// clipRank is the clip-popularity analog of rank.
func (w *workload) clipRank() uint64 {
	if w.clipZipf != nil {
		return w.clipZipf.Uint64()
	}
	return uint64(w.rng.Intn(max(w.clips, 1)))
}

// seekFrame draws a frame index within a clip of the given length.
func (w *workload) seekFrame(frames int) int {
	if frames <= 1 {
		return 0
	}
	if w.frameZipf != nil {
		return int(w.frameZipf.Uint64()) % frames
	}
	return w.rng.Intn(frames)
}

// variant draws one query from the variant spread: named sizes most of the
// time, dynamic resizes and crops for the rest.
func (w *workload) variant() url.Values {
	if w.rng.Float64() >= w.dynamic {
		sizes := []string{"thumb", "small", "big"}
		return url.Values{"size": {sizes[w.rng.Intn(len(sizes))]}}
	}
	q := url.Values{}
	widths := []int{64, 128, 200, 320, 480}
	wpx := widths[w.rng.Intn(len(widths))]
	q.Set("w", strconv.Itoa(wpx))
	q.Set("h", strconv.Itoa(wpx*3/4))
	if w.rng.Float64() < 0.3 {
		// A modest crop well inside the smallest corpus photo.
		x, y := w.rng.Intn(64), w.rng.Intn(64)
		cw, ch := 128+w.rng.Intn(64), 96+w.rng.Intn(48)
		q.Set("crop", fmt.Sprintf("%d,%d,%d,%d", x, y, cw, ch))
	}
	return q
}

// recoveryPoint is one sample of the recovery curve during an erasure
// shardkill run: cumulative degraded-read and repair counters at t seconds
// into the run, plus how many shards were down at that instant.
type recoveryPoint struct {
	TS             float64 `json:"t_s"`
	ShardsDown     int     `json:"shards_down"`
	DegradedReads  uint64  `json:"degraded_reads"`
	ReadFailures   uint64  `json:"share_read_failures"`
	SharesRepaired uint64  `json:"shares_repaired"`
	HintsParked    uint64  `json:"hints_parked"`
	HintsDrained   uint64  `json:"hints_drained"`
}

// servingEntry is one run's record in BENCH_serving.json.
type servingEntry struct {
	GeneratedAt time.Time              `json:"generated_at"`
	GoVersion   string                 `json:"go_version"`
	GOMAXPROCS  int                    `json:"gomaxprocs"`
	Config      config                 `json:"config"`
	ElapsedS    float64                `json:"elapsed_s"`
	TotalPerSec float64                `json:"total_throughput_per_s"`
	Ops         map[string]opReport    `json:"ops"`
	Caches      map[string]cache.Stats `json:"caches"`
	HitRate     float64                `json:"variant_hit_rate"`
	Shards      []p3.ShardStats        `json:"shards,omitempty"`
	// Erasure-run extras: per-shard share traffic, self-healing totals, the
	// recovery curve sampled through the fault and repair window, seconds
	// the post-run scrub needed to converge (no more repairs to do), and
	// the post-run corpus verification (every photo re-downloaded through
	// cold caches; DataLossObjects must be 0).
	ErasureShards   []p3.ErasureShardStats `json:"erasure_shards,omitempty"`
	Repair          *p3.RepairStats        `json:"repair,omitempty"`
	Recovery        []recoveryPoint        `json:"recovery_curve,omitempty"`
	RepairS         float64                `json:"repair_s,omitempty"`
	VerifiedObjects int                    `json:"verified_objects,omitempty"`
	DataLossObjects int                    `json:"data_loss_objects"`
	// StorageOverhead is bytes on disk across all shards divided by the
	// logical (sealed secret) bytes stored — ~R for R-way replication,
	// ~n/k for erasure coding. Recorded for every run over disk shards.
	StorageOverhead float64 `json:"storage_overhead,omitempty"`
	// Recalibration-run extras: the forced mid-run recalibration passes
	// themselves, downloads split into steady vs during-recalibration
	// buckets (the stale-while-revalidate cost view), and the proxy's
	// calibration counters (epoch, sweeps, stale serves, warm hits).
	Recalibrations      *opReport               `json:"recalibrations,omitempty"`
	DownloadSteady      *opReport               `json:"download_steady,omitempty"`
	DownloadDuringRecal *opReport               `json:"download_during_recal,omitempty"`
	Calibration         *proxy.CalibrationStats `json:"calibration,omitempty"`
	// Admission is the controller snapshot for runs with admission on;
	// Storm the per-client view of a storm-mode run.
	Admission *admission.Stats `json:"admission,omitempty"`
	Storm     *stormReport     `json:"storm,omitempty"`
	// Dedup-run extras: the dedup layer's counters and post-run scrub
	// audit, the similarity index's counters, the fraction of logical
	// public bytes dedup kept off the PSP, the fraction of similar queries
	// returning at least one neighbor, and the byte-identity verification
	// over every content group (DedupMismatches must be 0).
	Dedup             *dedup.Stats       `json:"dedup,omitempty"`
	DedupScrub        *dedup.ScrubReport `json:"dedup_scrub,omitempty"`
	Similarity        *similarity.Stats  `json:"similarity,omitempty"`
	StorageSavedRatio float64            `json:"storage_saved_ratio,omitempty"`
	SimilarHitRate    float64            `json:"similar_hit_rate,omitempty"`
	DedupVerified     int                `json:"dedup_verified,omitempty"`
	DedupMismatches   int                `json:"dedup_mismatches,omitempty"`
}

// stormReport is the storm-mode section of the JSON entry: the victims'
// latency split around the storm window, the attacker's fate, and the
// acceptance numbers the storm gate checks.
type stormReport struct {
	Clients      int      `json:"clients"`
	AttackerMult float64  `json:"attacker_mult"`
	StormFromS   float64  `json:"storm_from_s"`
	StormToS     float64  `json:"storm_to_s"`
	VictimSteady opReport `json:"victim_steady"`
	VictimStorm  opReport `json:"victim_storm"`
	Attacker     opReport `json:"attacker"`
	// VictimErrors counts every victim request that did not succeed —
	// sheds included; the gate requires 0.
	VictimErrors uint64 `json:"victim_errors"`
	// AttackerShed counts attacker requests answered 503 by the
	// admission layer (all reasons).
	AttackerShed uint64 `json:"attacker_shed"`
	// StormSheds is the controller's storm-reason shed total — the
	// detector actually clamping someone; the gate requires > 0.
	StormSheds uint64 `json:"storm_sheds"`
}

// servingFile is the whole BENCH_serving.json document: runs accumulate.
type servingFile struct {
	Runs []servingEntry `json:"runs"`
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintf(os.Stderr, "p3load: %v\n", err)
		os.Exit(1)
	}
}

// run executes one load run. Flags live on a private FlagSet (not
// flag.CommandLine) so tests can invoke whole runs in-process, more than
// once, with different argument vectors.
func run(args []string) error {
	fs := flag.NewFlagSet("p3load", flag.ContinueOnError)
	scenario := fs.String("scenario", "mixed", "preset: smoke, mixed, zipf-hot, uniform, burst, shardkill, shardkill-ec, video, recalibrate, storm, dup-heavy")
	preset := fs.String("preset", "", "alias for -scenario")
	mode := fs.String("mode", "", "closed (workers loop), open (timed arrivals), or storm (per-client arrivals)")
	duration := fs.Duration("duration", 0, "measured run length")
	workers := fs.Int("workers", 0, "closed-loop workers / open-loop dispatch bound")
	rate := fs.Float64("rate", 0, "open-loop arrival rate per second")
	photos := fs.Int("photos", 0, "pre-populated corpus size")
	zipfS := fs.Float64("zipf", -1, "zipf popularity exponent (>1); 0 = uniform")
	mix := fs.String("mix", "", "upload:download:calibrate weights, e.g. 1:40:0.2")
	dynamic := fs.Float64("dynamic", -1, "fraction of dynamic (w/h/crop) variant queries")
	burst := fs.Bool("burst", false, "open loop: alternate 1x and 5x arrival rate")
	shardKill := fs.Bool("shard-kill", false, "kill shard(s) at 40% of the run, revive at 70%")
	secretCache := fs.Int64("secret-cache-bytes", 0, "proxy secret-cache budget (0 = preset default)")
	storeKind := fs.String("store-kind", "", "secret store layout: sharded (replication) or erasure")
	shardCount := fs.Int("shards", 0, "disk shards under the store (0 = preset default)")
	replicas := fs.Int("replicas", 0, "replication factor for -store-kind sharded")
	ecK := fs.Int("ec-k", 0, "erasure data shares (with -store-kind erasure)")
	ecN := fs.Int("ec-n", 0, "erasure total shares (with -store-kind erasure)")
	killShards := fs.Int("kill-shards", 0, "shards the -shard-kill fault takes down at once")
	scrubInterval := fs.Duration("scrub-interval", -1, "erasure store scrub daemon period (0 disables)")
	clips := fs.Int("clips", 0, "pre-populated video clip corpus size")
	clipFrames := fs.String("clip-frames", "", "clip frame-count spread, min-max (e.g. 4-12)")
	frameZipf := fs.Float64("frame-zipf", -1, "frame-seek popularity exponent (>1); 0 = uniform")
	fullClip := fs.Float64("full-clip", -1, "fraction of video downloads joining the whole clip")
	recalibrations := fs.Int("recalibrations", 0, "forced full recalibrations at evenly spaced points mid-run")
	warmTopK := fs.Int("warm-topk", 0, "hottest variants the proxy pre-warms after an epoch flip (0 = proxy default)")
	maxDownP99 := fs.Duration("max-download-p99", 0, "fail the run if download p99 exceeds this (0 disables)")
	maxInflight := fs.Int("max-inflight", 0, "admission: concurrent requests the proxy serves (0 = admission off)")
	queueDepth := fs.Int("queue-depth", 0, "admission: bounded queue depth per cost class (0 = package default)")
	clientRPS := fs.Float64("client-rps", 0, "admission: per-client token-bucket refill rate (0 = no client buckets)")
	stormClamp := fs.Float64("storm-clamp", 0, "admission: clamp clients over this multiple of fair share during a storm (0 = package default)")
	clientsN := fs.Int("clients", 0, "storm mode: victim clients (one attacker is added on top)")
	attackerMult := fs.Float64("attacker-mult", 0, "storm mode: attacker peak rate as a multiple of its fair share")
	traceRecord := fs.String("trace-record", "", "record every dispatched op to this trace file (JSONL)")
	traceReplay := fs.String("trace-replay", "", "replay arrivals from this trace file instead of generating them")
	traceSpeed := fs.Float64("trace-speed", 1, "replay clock scale: 1 recorded speed, 2 twice as fast, 0 unpaced")
	dedupOn := fs.Bool("dedup", false, "content-addressed dedup of public parts between the proxy and the PSP")
	dupUnique := fs.Int("dup-unique", 0, "distinct base images in the upload pool (each also as a near-dup re-encode; 0 = the plain 3-image pool)")
	similarD := fs.Int("similar-d", 0, "hamming radius for similar ops (0 = default 10)")
	gate := fs.Bool("gate", false, "fail the run on any op error (CI smoke contract)")
	seed := fs.Int64("seed", 1, "workload rng seed")
	out := fs.String("out", "BENCH_serving.json", "serving trajectory file to append to ('' = don't write)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *preset != "" {
		*scenario = *preset
	}
	cfg, ok := scenarios[*scenario]
	if !ok {
		names := make([]string, 0, len(scenarios))
		for n := range scenarios {
			names = append(names, n)
		}
		sort.Strings(names)
		return fmt.Errorf("unknown -scenario %q (have: %s)", *scenario, strings.Join(names, ", "))
	}
	cfg.Scenario = *scenario
	cfg.Seed = *seed
	// Explicit flags override the preset.
	set := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
	if set["mode"] {
		cfg.Mode = *mode
	}
	if set["duration"] {
		cfg.Duration = *duration
	}
	if set["workers"] {
		cfg.Workers = *workers
	}
	if set["rate"] {
		cfg.Rate = *rate
	}
	if set["photos"] {
		cfg.Photos = *photos
	}
	if set["zipf"] {
		cfg.Zipf = *zipfS
	}
	if set["mix"] {
		cfg.Mix = *mix
	}
	if set["dynamic"] {
		cfg.Dynamic = *dynamic
	}
	if set["burst"] {
		cfg.Burst = *burst
	}
	if set["shard-kill"] {
		cfg.ShardKill = *shardKill
	}
	if set["secret-cache-bytes"] {
		cfg.SecretCache = *secretCache
	}
	if set["store-kind"] {
		cfg.StoreKind = *storeKind
	}
	if set["shards"] {
		cfg.ShardCount = *shardCount
	}
	if set["replicas"] {
		cfg.Replicas = *replicas
	}
	if set["ec-k"] {
		cfg.ECK = *ecK
	}
	if set["ec-n"] {
		cfg.ECN = *ecN
	}
	if set["kill-shards"] {
		cfg.KillShards = *killShards
	}
	if set["scrub-interval"] {
		cfg.ScrubInterval = *scrubInterval
	}
	if set["clips"] {
		cfg.Clips = *clips
	}
	if set["clip-frames"] {
		if _, err := fmt.Sscanf(*clipFrames, "%d-%d", &cfg.ClipFramesMin, &cfg.ClipFramesMax); err != nil {
			return fmt.Errorf("bad -clip-frames %q (want min-max)", *clipFrames)
		}
	}
	if set["frame-zipf"] {
		cfg.FrameZipf = *frameZipf
	}
	if set["full-clip"] {
		cfg.FullClip = *fullClip
	}
	if set["recalibrations"] {
		cfg.Recalibrations = *recalibrations
	}
	if set["warm-topk"] {
		cfg.WarmTopK = *warmTopK
	}
	if set["max-download-p99"] {
		cfg.MaxDownP99 = *maxDownP99
	}
	if set["max-inflight"] {
		cfg.MaxInflight = *maxInflight
	}
	if set["queue-depth"] {
		cfg.QueueDepth = *queueDepth
	}
	if set["client-rps"] {
		cfg.ClientRPS = *clientRPS
	}
	if set["storm-clamp"] {
		cfg.StormClamp = *stormClamp
	}
	if set["clients"] {
		cfg.Clients = *clientsN
	}
	if set["attacker-mult"] {
		cfg.AttackerMult = *attackerMult
	}
	if set["dedup"] {
		cfg.Dedup = *dedupOn
	}
	if set["dup-unique"] {
		cfg.DupUnique = *dupUnique
	}
	if set["similar-d"] {
		cfg.SimilarD = *similarD
	}
	if set["gate"] {
		cfg.Gate = *gate
	}
	// Trace flags are run artifacts, never preset defaults.
	cfg.TraceRecord = *traceRecord
	cfg.TraceReplay = *traceReplay
	cfg.TraceSpeed = *traceSpeed
	// A replayed trace dictates corpus shape and seed: recorded events
	// address the corpus positionally, so the replay run must rebuild an
	// equivalent one.
	var replayLog *trace.Log
	if cfg.TraceReplay != "" {
		var err error
		if replayLog, err = trace.ReadFile(cfg.TraceReplay); err != nil {
			return err
		}
		h := replayLog.Header
		if h.Photos > 0 {
			cfg.Photos = h.Photos
		}
		if h.Videos > 0 {
			cfg.Clips = h.Videos
		}
		if h.Seed != 0 {
			cfg.Seed = h.Seed
		}
	}
	if cfg.SecretCache <= 0 {
		cfg.SecretCache = 32 << 20
	}
	// Topology defaults: the historical 3-shard/2-replica stack for
	// replication, 4-of-6 over 6 shards for erasure.
	if cfg.StoreKind == "" {
		cfg.StoreKind = "sharded"
	}
	switch cfg.StoreKind {
	case "sharded":
		if cfg.ShardCount == 0 {
			cfg.ShardCount = 3
		}
		if cfg.Replicas == 0 {
			cfg.Replicas = 2
		}
	case "erasure":
		if cfg.ECK == 0 {
			cfg.ECK = p3.DefaultErasureK
		}
		if cfg.ECN == 0 {
			cfg.ECN = p3.DefaultErasureN
		}
		if cfg.ShardCount == 0 {
			cfg.ShardCount = cfg.ECN
		}
	default:
		return fmt.Errorf("bad -store-kind %q (want sharded or erasure)", cfg.StoreKind)
	}
	if cfg.ShardKill && cfg.KillShards == 0 {
		cfg.KillShards = 1
	}
	if cfg.KillShards >= cfg.ShardCount {
		return fmt.Errorf("bad -kill-shards %d (must leave at least one of %d shards up)",
			cfg.KillShards, cfg.ShardCount)
	}
	cfg.ScrubIntervalS = cfg.ScrubInterval.Seconds()
	cfg.DurationS = cfg.Duration.Seconds()
	cfg.MaxDownP99Ms = float64(cfg.MaxDownP99) / float64(time.Millisecond)
	if cfg.Recalibrations < 0 {
		return fmt.Errorf("bad -recalibrations %d", cfg.Recalibrations)
	}
	if cfg.Mode != "closed" && cfg.Mode != "open" && cfg.Mode != "storm" {
		return fmt.Errorf("bad -mode %q (want closed, open, or storm)", cfg.Mode)
	}
	if cfg.Photos < 1 {
		return fmt.Errorf("bad -photos %d (need at least 1 pre-populated photo)", cfg.Photos)
	}
	if (cfg.Mode == "open" || cfg.Mode == "storm") && cfg.Rate <= 0 {
		return fmt.Errorf("bad -rate %g (%s loop needs a positive arrival rate)", cfg.Rate, cfg.Mode)
	}
	if cfg.Mode == "storm" {
		if cfg.Clients < 1 {
			return fmt.Errorf("bad -clients %d (storm mode needs at least 1 victim client)", cfg.Clients)
		}
		if cfg.AttackerMult <= 1 {
			return fmt.Errorf("bad -attacker-mult %g (must exceed 1)", cfg.AttackerMult)
		}
		if cfg.MaxInflight <= 0 {
			return fmt.Errorf("storm mode needs admission control on (-max-inflight > 0)")
		}
	}
	if cfg.TraceSpeed < 0 {
		return fmt.Errorf("bad -trace-speed %g", cfg.TraceSpeed)
	}
	if cfg.DupUnique < 0 || cfg.SimilarD < 0 || cfg.SimilarD > 64 {
		return fmt.Errorf("bad -dup-unique %d / -similar-d %d", cfg.DupUnique, cfg.SimilarD)
	}
	weights, _, err := parseMix(cfg.Mix)
	if err != nil {
		return err
	}
	videoInUse := weights[opVideoUpload] > 0 || weights[opVideoDownload] > 0
	similarityInUse := cfg.Dedup || weights[opSimilar] > 0
	if similarityInUse && cfg.SimilarD == 0 {
		cfg.SimilarD = proxy.DefaultSimilarDistance
	}
	if replayLog != nil && replayLog.Header.Videos > 0 {
		// A video trace needs the clip pool even if this run's own mix has
		// no video weight (replay with -scenario video to set the pool's
		// frame spread).
		videoInUse = true
	}
	if videoInUse {
		if cfg.Clips < 1 {
			return fmt.Errorf("bad -clips %d (video ops need at least 1 pre-populated clip)", cfg.Clips)
		}
		if cfg.ClipFramesMin < 1 || cfg.ClipFramesMax < cfg.ClipFramesMin {
			return fmt.Errorf("bad -clip-frames %d-%d", cfg.ClipFramesMin, cfg.ClipFramesMax)
		}
	}

	// --- Stack under test -------------------------------------------------
	fmt.Printf("p3load: scenario %s (%s loop, %v, %d workers, %d photos, zipf %g, mix %s)\n",
		cfg.Scenario, cfg.Mode, cfg.Duration, cfg.Workers, cfg.Photos, cfg.Zipf, cfg.Mix)

	pspSrv := httptest.NewServer(psp.NewServer(psp.FacebookLike()))
	defer pspSrv.Close()

	shardRoot, err := os.MkdirTemp("", "p3load-shards-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(shardRoot)
	faults := make([]*faultyStore, cfg.ShardCount)
	shards := make([]p3.SecretStore, cfg.ShardCount)
	for i := range shards {
		disk, err := p3.NewDiskSecretStore(filepath.Join(shardRoot, fmt.Sprintf("shard%d", i)))
		if err != nil {
			return err
		}
		faults[i] = &faultyStore{inner: disk}
		shards[i] = faults[i]
	}
	var store p3.SecretStore
	var sharded *p3.ShardedSecretStore
	var ec *p3.ErasureSecretStore
	switch cfg.StoreKind {
	case "sharded":
		sharded, err = p3.NewShardedSecretStore(shards, p3.WithShardReplicas(cfg.Replicas))
		if err != nil {
			return err
		}
		store = sharded
	case "erasure":
		ec, err = p3.NewErasureSecretStore(shards,
			p3.WithErasureScheme(cfg.ECK, cfg.ECN),
			p3.WithScrubInterval(cfg.ScrubInterval))
		if err != nil {
			return err
		}
		defer ec.Close()
		store = ec
	}

	key, err := p3.NewKey()
	if err != nil {
		return err
	}
	codec, err := p3.New(key)
	if err != nil {
		return err
	}
	// A private registry keeps repeated in-process runs (tests) from
	// colliding on metrics.Default.
	reg := metrics.NewRegistry()
	pxOpts := []proxy.ProxyOption{
		proxy.WithMetricsName("p3load"),
		proxy.WithMetricsRegistry(reg),
		proxy.WithSecretCacheBytes(cfg.SecretCache),
		proxy.WithVariantCacheBytes(32 << 20),
	}
	if cfg.WarmTopK > 0 {
		pxOpts = append(pxOpts, proxy.WithWarmTopK(cfg.WarmTopK))
	}
	var ctrl *admission.Controller
	if cfg.MaxInflight > 0 {
		ctrl, err = admission.New(admission.Config{
			MaxInflight: cfg.MaxInflight,
			QueueDepth:  cfg.QueueDepth,
			ClientRPS:   cfg.ClientRPS,
			StormClamp:  cfg.StormClamp,
		}, reg, "p3load")
		if err != nil {
			return err
		}
		pxOpts = append(pxOpts, proxy.WithAdmission(ctrl))
		fmt.Printf("p3load: admission on (max-inflight %d, queue %d, client-rps %g, storm-clamp %g)\n",
			cfg.MaxInflight, cfg.QueueDepth, cfg.ClientRPS, cfg.StormClamp)
	}
	var photoSvc p3.PhotoService = p3.NewHTTPPhotoService(pspSrv.URL)
	var ded *dedup.Store
	if cfg.Dedup {
		ded = dedup.New(photoSvc, dedup.WithRegistry(reg), dedup.WithName("p3load"))
		photoSvc = ded
		fmt.Println("p3load: content-addressed dedup of public parts on")
	}
	var sim *similarity.Index
	if similarityInUse {
		sim = similarity.NewIndex(similarity.WithRegistry(reg), similarity.WithName("p3load"))
		defer sim.Close()
		pxOpts = append(pxOpts, proxy.WithSimilarity(sim))
	}
	px := proxy.New(codec, photoSvc, store, pxOpts...)

	ctx := context.Background()
	if _, err := px.Calibrate(ctx); err != nil {
		return fmt.Errorf("calibrate: %w", err)
	}

	// --- Corpus -----------------------------------------------------------
	// A few source sizes so upload cost and variant geometry vary; all
	// large enough that the workload's crops stay in-bounds.
	encodeAt := func(img *jpegx.PlanarImage, quality int) ([]byte, error) {
		coeffs, err := img.ToCoeffs(quality, jpegx.Sub420)
		if err != nil {
			return nil, err
		}
		var buf bytes.Buffer
		if err := jpegx.EncodeCoeffs(&buf, coeffs, nil); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	}
	var jpegPool [][]byte
	if cfg.DupUnique > 0 {
		// Duplicate-heavy pool: DupUnique distinct base images, each present
		// twice — once at the baseline quality and once as a near-duplicate
		// re-encode (same pixels, different JPEG bytes). Uploads drawing
		// uniformly from this pool make every payload a many-way duplicate
		// (the dedup hit path) while the re-encodes keep the similarity
		// index's near-dup clustering honest (distinct content hashes, tiny
		// hamming distance).
		dims := []struct{ w, h int }{{512, 384}, {448, 336}, {400, 300}}
		for i := 0; i < cfg.DupUnique; i++ {
			dim := dims[i%len(dims)]
			img := dataset.Natural(int64(1000+i), dim.w, dim.h)
			exact, err := encodeAt(img, 90)
			if err != nil {
				return err
			}
			near, err := encodeAt(img, 84)
			if err != nil {
				return err
			}
			jpegPool = append(jpegPool, exact, near)
		}
	} else {
		for i, dim := range []struct{ w, h int }{{512, 384}, {448, 336}, {400, 300}} {
			img := dataset.Natural(int64(1000+i), dim.w, dim.h)
			enc, err := encodeAt(img, 90)
			if err != nil {
				return err
			}
			jpegPool = append(jpegPool, enc)
		}
	}
	// payloadOf maps every uploaded logical ID back to its pool index, so
	// the post-run dedup verification can demand byte-identity within each
	// content group.
	var payloadOf sync.Map
	pop := &corpus{}
	for i := 0; i < cfg.Photos; i++ {
		id, err := px.Upload(ctx, jpegPool[i%len(jpegPool)])
		if err != nil {
			return fmt.Errorf("pre-populating corpus: %w", err)
		}
		payloadOf.Store(id, i%len(jpegPool))
		pop.add(id)
	}
	layout := fmt.Sprintf("%d disk shards (%d replicas)", cfg.ShardCount, cfg.Replicas)
	if cfg.StoreKind == "erasure" {
		layout = fmt.Sprintf("%d disk shards (%d-of-%d erasure, scrub %v)",
			cfg.ShardCount, cfg.ECK, cfg.ECN, cfg.ScrubInterval)
	}
	fmt.Printf("p3load: corpus of %d photos over %s behind %s\n",
		cfg.Photos, layout, pspSrv.URL)

	// --- Video corpus -----------------------------------------------------
	// Upload clips are drawn from a pool whose frame counts spread across
	// [ClipFramesMin, ClipFramesMax] — the clip-size distribution — with
	// small frames so clip cost is dominated by frame count, like real
	// short-form video mixes.
	var clipPool []poolClip
	vpop := &videoCorpus{}
	if videoInUse {
		counts := []int{cfg.ClipFramesMin, (cfg.ClipFramesMin + cfg.ClipFramesMax) / 2, cfg.ClipFramesMax}
		for pi, frames := range counts {
			jpegs := make([][]byte, frames)
			for f := range jpegs {
				img := dataset.Natural(int64(2000+100*pi+f), 160, 120)
				coeffs, err := img.ToCoeffs(88, jpegx.Sub420)
				if err != nil {
					return err
				}
				var buf bytes.Buffer
				if err := jpegx.EncodeCoeffs(&buf, coeffs, nil); err != nil {
					return err
				}
				jpegs[f] = buf.Bytes()
			}
			clip, err := p3.PackMJPEG(jpegs)
			if err != nil {
				return err
			}
			clipPool = append(clipPool, poolClip{bytes: clip, frames: frames})
		}
		for i := 0; i < cfg.Clips; i++ {
			pc := clipPool[i%len(clipPool)]
			id, frames, err := px.UploadVideo(ctx, pc.bytes)
			if err != nil {
				return fmt.Errorf("pre-populating video corpus: %w", err)
			}
			vpop.add(id, frames)
		}
		fmt.Printf("p3load: video corpus of %d clips (%d-%d frames each) on the same shards\n",
			cfg.Clips, cfg.ClipFramesMin, cfg.ClipFramesMax)
	}

	// --- Run --------------------------------------------------------------
	var recs [numOps]*opRecorder
	for i := range recs {
		recs[i] = &opRecorder{}
	}
	// Downloads are additionally attributed to a steady or
	// during-recalibration bucket: the in-flight flag is sampled on both
	// sides of the request, so a download overlapping any part of a
	// calibration pass counts as during-recal (stale-while-revalidate
	// serving). calibBusy counts Calibrate ops turned away by the
	// single-flight admission — backpressure, not failures.
	downSteady, downRecal := &opRecorder{}, &opRecorder{}
	var calibBusy atomic.Uint64
	// similarHits / similarQueries feed the similar-hit-rate number: a
	// query "hits" when it returns at least one neighbor.
	var similarQueries, similarHits atomic.Uint64

	// Drawing an op and executing it are split around a trace.Event: a
	// generated stream and a replayed trace run through one execution
	// path, and recording is a tap on the event at dispatch time.
	//
	// drawEvent turns the workload's next draw into an event. Targets are
	// positional — Photo is the popularity rank for downloads and the
	// payload-pool index for uploads, Video likewise — so a replay against
	// a corpus rebuilt from the trace header addresses equivalent objects
	// even though the IDs themselves are minted fresh per run.
	drawEvent := func(w *workload) trace.Event {
		k := w.nextOp()
		ev := trace.Event{Op: k.String(), Photo: -1, Video: -1, Frame: -1}
		switch k {
		case opUpload:
			ev.Photo = w.rng.Intn(len(w.jpegPool))
		case opDownload:
			ev.Photo = int(w.rank())
			ev.Q = w.variant().Encode()
		case opSimilar:
			ev.Photo = int(w.rank())
		case opVideoUpload:
			ev.Video = w.rng.Intn(len(w.clipPool))
		case opVideoDownload:
			ev.Video = int(w.clipRank())
			if w.rng.Float64() >= w.fullClip {
				ev.Frame = w.seekFrame(vpop.pick(clampRank(ev.Video)).frames)
			}
		}
		return ev
	}

	// execEvent executes one event against the stack, records it in the
	// per-op recorders, and returns the client-observed latency and error
	// so mode-specific drivers (storm's per-client buckets) can attribute
	// it further.
	execEvent := func(ev trace.Event) (time.Duration, error) {
		k, ok := opFromString(ev.Op)
		if !ok {
			return 0, fmt.Errorf("unknown trace op %q", ev.Op)
		}
		ctx := ctx
		if ev.Client != "" {
			ctx = admission.WithClient(ctx, ev.Client)
		}
		var d time.Duration
		var err error
		switch k {
		case opUpload:
			pi := int(clampRank(ev.Photo)) % len(jpegPool)
			start := time.Now()
			id, uerr := px.Upload(ctx, jpegPool[pi])
			d, err = time.Since(start), uerr
			if err == nil {
				payloadOf.Store(id, pi)
				pop.add(id)
			}
		case opDownload:
			id := pop.pick(clampRank(ev.Photo))
			q, _ := url.ParseQuery(ev.Q)
			during := px.CalibrationInFlight()
			start := time.Now()
			_, err = px.Download(ctx, id, q)
			d = time.Since(start)
			during = during || px.CalibrationInFlight()
			if during {
				downRecal.record(d, err)
			} else {
				downSteady.record(d, err)
			}
		case opCalibrate:
			start := time.Now()
			_, err = px.Calibrate(ctx)
			d = time.Since(start)
			var busy *proxy.CalibrationInFlightError
			if errors.As(err, &busy) {
				calibBusy.Add(1)
				err = nil
			}
		case opVideoUpload:
			pc := clipPool[int(clampRank(ev.Video))%len(clipPool)]
			start := time.Now()
			id, frames, uerr := px.UploadVideo(ctx, pc.bytes)
			d, err = time.Since(start), uerr
			if err == nil {
				vpop.add(id, frames)
			}
		case opVideoDownload:
			ref := vpop.pick(clampRank(ev.Video))
			q := url.Values{}
			if ev.Frame >= 0 {
				q.Set("frame", strconv.Itoa(ev.Frame%max(ref.frames, 1)))
			}
			start := time.Now()
			_, err = px.DownloadVideo(ctx, ref.id, q)
			d = time.Since(start)
		case opSimilar:
			id := pop.pick(clampRank(ev.Photo))
			start := time.Now()
			matches, serr := px.Similar(ctx, id, cfg.SimilarD)
			d, err = time.Since(start), serr
			similarQueries.Add(1)
			if err == nil && len(matches) > 0 {
				similarHits.Add(1)
			}
		}
		recs[k].record(d, err)
		return d, err
	}

	// recorder taps every dispatched event when -trace-record is set; it
	// is created right before the run starts so offsets are run-relative.
	var recorder *trace.Recorder
	execOp := func(w *workload) {
		ev := drawEvent(w)
		if recorder != nil {
			recorder.Record(ev)
		}
		execEvent(ev)
	}

	deadline := time.Now().Add(cfg.Duration)
	stop := make(chan struct{})
	var faultWG sync.WaitGroup
	if cfg.ShardKill {
		faultWG.Add(1)
		go func() {
			defer faultWG.Done()
			killAt := time.Duration(float64(cfg.Duration) * 0.4)
			reviveAt := time.Duration(float64(cfg.Duration) * 0.7)
			select {
			case <-time.After(killAt):
				for i := 0; i < cfg.KillShards; i++ {
					faults[i].down.Store(true)
				}
				fmt.Printf("p3load: !! %d shard(s) killed at +%v\n",
					cfg.KillShards, killAt.Round(time.Millisecond))
			case <-stop:
				return
			}
			select {
			case <-time.After(reviveAt - killAt):
				for i := 0; i < cfg.KillShards; i++ {
					faults[i].down.Store(false)
				}
				fmt.Printf("p3load: !! shard(s) revived at +%v (repair heals from here)\n",
					reviveAt.Round(time.Millisecond))
			case <-stop:
			}
		}()
	}

	// Forced recalibrations fire at evenly spaced points — i/(n+1) of the
	// run for n passes — so the download stream sees each full sweep, epoch
	// flip, lazy purge, and pre-warm while traffic is flowing.
	recalRec := &opRecorder{}
	var recalFlips atomic.Uint64
	if cfg.Recalibrations > 0 {
		fmt.Printf("p3load: forcing %d recalibrations mid-run (pre-warming top %d variants per flip)\n",
			cfg.Recalibrations, cfg.WarmTopK)
		faultWG.Add(1)
		go func() {
			defer faultWG.Done()
			base := time.Now()
			for i := 1; i <= cfg.Recalibrations; i++ {
				// Target times are wall-clock offsets from the run start, so
				// a pass that overruns its slot (CPU contention with the
				// workload is the point of this preset) delays but never
				// starves the passes behind it.
				at := time.Duration(float64(cfg.Duration) * float64(i) / float64(cfg.Recalibrations+1))
				if wait := at - time.Since(base); wait > 0 {
					select {
					case <-time.After(wait):
					case <-stop:
						return
					}
				}
				start := time.Now()
				out, err := px.Recalibrate(ctx, true)
				recalRec.record(time.Since(start), err)
				if err != nil {
					fmt.Printf("p3load: !! forced recalibration #%d failed: %v\n", i, err)
					continue
				}
				if out.Flipped {
					recalFlips.Add(1)
				}
				fmt.Printf("p3load: !! forced recalibration #%d at +%v: epoch %d, warmed %d variants (%v)\n",
					i, at.Round(time.Millisecond), out.Epoch, out.Warmed,
					time.Since(start).Round(time.Millisecond))
			}
		}()
	}

	if cfg.TraceRecord != "" {
		recorder = trace.NewRecorder(trace.Header{
			Scenario: cfg.Scenario,
			Seed:     cfg.Seed,
			Photos:   cfg.Photos,
			Videos:   cfg.Clips,
			Note:     "recorded by p3load -trace-record",
		})
	}
	started := time.Now()

	// Erasure runs sample a recovery curve: cumulative degraded-read and
	// repair counters every 300ms, from the run start through the post-run
	// repair convergence, so the entry records how fast redundancy returns.
	var curve []recoveryPoint
	samplerStop := make(chan struct{})
	samplerDone := make(chan struct{})
	if ec != nil && cfg.ShardKill {
		go func() {
			defer close(samplerDone)
			ticker := time.NewTicker(300 * time.Millisecond)
			defer ticker.Stop()
			for {
				select {
				case <-samplerStop:
					return
				case <-ticker.C:
					rs := ec.RepairStats()
					var readFails uint64
					for _, sh := range ec.ErasureShardStats() {
						readFails += sh.ShareReadFailures
					}
					downs := 0
					for _, f := range faults {
						if f.down.Load() {
							downs++
						}
					}
					curve = append(curve, recoveryPoint{
						TS:             time.Since(started).Seconds(),
						ShardsDown:     downs,
						DegradedReads:  rs.DegradedReads,
						ReadFailures:   readFails,
						SharesRepaired: rs.SharesRepaired,
						HintsParked:    rs.HintsParked,
						HintsDrained:   rs.HintsDrained,
					})
				}
			}
		}()
	} else {
		close(samplerDone)
	}
	// Per-client accounting for storm runs: victims bucketed by whether
	// the op was dispatched inside the storm window, the attacker
	// separately, plus the attacker's shed count (its requests answered
	// 503 by the admission layer).
	victimSteady, victimStorm, attackRec := &opRecorder{}, &opRecorder{}, &opRecorder{}
	var attackerShed atomic.Uint64
	stormFrom := time.Duration(float64(cfg.Duration) * 0.4)
	stormTo := time.Duration(float64(cfg.Duration) * 0.7)

	var wg sync.WaitGroup
	switch {
	case replayLog != nil:
		// Trace replay: dispatch each recorded event at its recorded
		// (scaled) offset, open-loop — the work runs in goroutines while
		// the dispatch clock keeps pace, so recorded overload replays as
		// overload. Dispatch order is the recorded order exactly; a
		// simultaneous -trace-record therefore re-records the same event
		// sequence.
		fmt.Printf("p3load: replaying %d events from %s at %gx\n",
			len(replayLog.Events), cfg.TraceReplay, cfg.TraceSpeed)
		if err := trace.Replay(ctx, replayLog, cfg.TraceSpeed, func(ev trace.Event) {
			if recorder != nil {
				recorder.Record(ev)
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				execEvent(ev)
			}()
		}); err != nil {
			return err
		}
	case cfg.Mode == "closed":
		// Closed loop: each worker issues back-to-back requests; offered
		// load adapts to service time, measuring capacity.
		for i := 0; i < cfg.Workers; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				w, err := newWorkload(cfg, cfg.Seed+int64(i), jpegPool, clipPool)
				if err != nil {
					panic(err) // validated before the run starts
				}
				for time.Now().Before(deadline) {
					execOp(w)
				}
			}(i)
		}
	case cfg.Mode == "open":
		// Open loop: arrivals at a set rate regardless of completions, so
		// queueing delay shows up in the latency — the trace-replay view.
		// Inter-arrivals are exponential (Poisson process); bursts multiply
		// the rate 5x in alternating 2s phases.
		arrivalRng := rand.New(rand.NewSource(cfg.Seed))
		wlPool := make(chan *workload, cfg.Workers*4)
		for i := 0; i < cfg.Workers*4; i++ {
			w, err := newWorkload(cfg, cfg.Seed+int64(i), jpegPool, clipPool)
			if err != nil {
				return err
			}
			wlPool <- w
		}
		for time.Now().Before(deadline) {
			r := cfg.Rate
			if cfg.Burst {
				phase := int(time.Since(started) / (2 * time.Second))
				if phase%2 == 1 {
					r *= 5
				}
			}
			time.Sleep(time.Duration(arrivalRng.ExpFloat64() / r * float64(time.Second)))
			wg.Add(1)
			go func() {
				defer wg.Done()
				w := <-wlPool
				execOp(w)
				wlPool <- w
			}()
		}
	case cfg.Mode == "storm":
		// Storm: every client is its own open-loop Poisson dispatcher at
		// an equal share of -rate. Mid-run the attacker ramps to
		// -attacker-mult times that share over the first fifth of the
		// storm window (a surge, not a step — the detector must catch an
		// onset, not a discontinuity) and holds it until the window ends.
		nClients := cfg.Clients + 1
		fair := cfg.Rate / float64(nClients)
		rampOver := (stormTo - stormFrom).Seconds() * 0.2
		fmt.Printf("p3load: storm: %d victims + 1 attacker at %.1f req/s each; attacker x%g during [%v, %v]\n",
			cfg.Clients, fair, cfg.AttackerMult,
			stormFrom.Round(time.Millisecond), stormTo.Round(time.Millisecond))
		for ci := 0; ci < nClients; ci++ {
			attacker := ci == nClients-1
			client := fmt.Sprintf("victim-%d", ci)
			if attacker {
				client = "attacker"
			}
			wg.Add(1)
			go func(ci int, client string, attacker bool) {
				defer wg.Done()
				w, err := newWorkload(cfg, cfg.Seed+int64(ci), jpegPool, clipPool)
				if err != nil {
					panic(err) // validated before the run starts
				}
				arrivals := rand.New(rand.NewSource(cfg.Seed + 7919*int64(ci)))
				var cwg sync.WaitGroup
				defer cwg.Wait()
				for {
					now := time.Since(started)
					if now >= cfg.Duration {
						return
					}
					r := fair
					if attacker && now >= stormFrom && now < stormTo {
						ramp := min(1, (now-stormFrom).Seconds()/rampOver)
						r = fair * (1 + (cfg.AttackerMult-1)*ramp)
					}
					time.Sleep(time.Duration(arrivals.ExpFloat64() / r * float64(time.Second)))
					ev := drawEvent(w)
					ev.Client = client
					if recorder != nil {
						recorder.Record(ev)
					}
					at := time.Since(started)
					cwg.Add(1)
					go func() {
						defer cwg.Done()
						d, err := execEvent(ev)
						switch {
						case attacker:
							attackRec.record(d, err)
							var shed *admission.ShedError
							if errors.As(err, &shed) {
								attackerShed.Add(1)
							}
						case at >= stormFrom && at < stormTo:
							victimStorm.record(d, err)
						default:
							victimSteady.record(d, err)
						}
					}()
				}
			}(ci, client, attacker)
		}
	}
	wg.Wait()
	close(stop)
	faultWG.Wait()
	elapsed := time.Since(started)

	if recorder != nil {
		if err := recorder.WriteFile(cfg.TraceRecord); err != nil {
			return fmt.Errorf("writing trace %s: %w", cfg.TraceRecord, err)
		}
		fmt.Printf("p3load: recorded %d events to %s\n", recorder.Len(), cfg.TraceRecord)
	}

	// --- Post-run repair + verification ------------------------------------
	var repairS float64
	verified, lost := 0, 0
	if ec != nil {
		// Drive explicit scrub passes until one finds nothing left to fix;
		// that is the repair time the benchmark reports (the daemon may have
		// done most of the work mid-run already).
		repairStart := time.Now()
		for pass := 0; pass < 100; pass++ {
			rep, err := ec.ScrubOnce(ctx)
			if err != nil {
				return fmt.Errorf("post-run scrub: %w", err)
			}
			if rep.SharesMissing+rep.SharesCorrupt+rep.SharesRepaired+
				rep.SharesRemoved+rep.TombstonesPropagated+rep.HintsDrained == 0 {
				break
			}
		}
		repairS = time.Since(repairStart).Seconds()
		fmt.Printf("p3load: post-run scrub converged in %.2fs\n", repairS)

		// Zero-data-loss verification: every photo in the corpus must still
		// download through cold caches.
		px.InvalidateCaches()
		for _, id := range pop.snapshot() {
			verified++
			if _, err := px.Download(ctx, id, url.Values{}); err != nil {
				lost++
				fmt.Printf("p3load: !! data loss: %s: %v\n", id, err)
			}
		}
		fmt.Printf("p3load: verified %d/%d corpus photos intact\n", verified-lost, verified)
	}
	close(samplerStop)
	<-samplerDone

	// --- Dedup verification -------------------------------------------------
	// Byte-identity within every content group: all logical IDs minted from
	// one pool payload must serve byte-identical full-size bytes through
	// cold caches — behind dedup they share one PSP blob, and that sharing
	// must be invisible to the application. Then a dedup scrub audits the
	// refcount invariants (refs match the live ID set, nothing negative).
	var dedupStats *dedup.Stats
	var dedupScrub *dedup.ScrubReport
	dupVerified, dupMismatches := 0, 0
	if sim != nil {
		sim.Flush()
	}
	if ded != nil {
		px.InvalidateCaches()
		groups := map[int][]string{}
		for _, id := range pop.snapshot() {
			if v, ok := payloadOf.Load(id); ok {
				groups[v.(int)] = append(groups[v.(int)], id)
			}
		}
		for _, ids := range groups {
			var ref []byte
			for i, id := range ids {
				got, err := px.Download(ctx, id, url.Values{})
				if err != nil {
					dupMismatches++
					fmt.Printf("p3load: !! dedup verify: %s: %v\n", id, err)
					continue
				}
				dupVerified++
				if i == 0 {
					ref = got
				} else if !bytes.Equal(ref, got) {
					dupMismatches++
					fmt.Printf("p3load: !! dedup verify: %s differs from its content group\n", id)
				}
			}
		}
		rep, err := ded.Scrub(ctx)
		if err != nil {
			return fmt.Errorf("dedup scrub: %w", err)
		}
		dedupScrub = &rep
		ds := ded.Stats()
		dedupStats = &ds
		fmt.Printf("p3load: dedup: %d uploads → %d blobs (%d dup hits), %s of %s public bytes saved; verified %d ids, %d mismatches, %d scrub ref errors\n",
			ds.Uploads, ds.UniqueBlobs, ds.DupHits,
			fmtBytes(ds.BytesSaved), fmtBytes(ds.BytesLogical),
			dupVerified, dupMismatches, dedupScrub.RefErrors)
	}

	// Storage overhead: bytes on disk across every shard vs the logical
	// sealed-secret bytes they encode (photo corpora only; video secrets
	// are spread over per-frame IDs the harness doesn't track).
	var overhead float64
	if !videoInUse {
		var diskBytes, logicalBytes int64
		filepath.Walk(shardRoot, func(_ string, info os.FileInfo, err error) error {
			if err == nil && info.Mode().IsRegular() {
				diskBytes += info.Size()
			}
			return nil
		})
		for _, id := range pop.snapshot() {
			if blob, err := store.GetSecret(ctx, id); err == nil {
				logicalBytes += int64(len(blob))
			}
		}
		if logicalBytes > 0 {
			overhead = float64(diskBytes) / float64(logicalBytes)
			fmt.Printf("p3load: storage overhead %.2fx (%d disk bytes / %d logical bytes)\n",
				overhead, diskBytes, logicalBytes)
		}
	}

	// --- Report -----------------------------------------------------------
	st := px.Stats()
	entry := servingEntry{
		GeneratedAt: time.Now().UTC().Truncate(time.Second),
		GoVersion:   runtime.Version(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Config:      cfg,
		ElapsedS:    elapsed.Seconds(),
		Ops:         map[string]opReport{},
		Caches: map[string]cache.Stats{
			"secrets":  st.Secrets,
			"dims":     st.Dims,
			"variants": st.Variants,
		},
		Recovery:        curve,
		RepairS:         repairS,
		VerifiedObjects: verified,
		DataLossObjects: lost,
		StorageOverhead: overhead,
	}
	if sharded != nil {
		entry.Shards = sharded.ShardStats()
	}
	if ec != nil {
		entry.ErasureShards = ec.ErasureShardStats()
		rs := ec.RepairStats()
		entry.Repair = &rs
	}
	var total uint64
	for k := opKind(0); k < numOps; k++ {
		rep := recs[k].report(elapsed)
		if rep.Count > 0 {
			entry.Ops[k.String()] = rep
		}
		total += rep.Count
	}
	entry.TotalPerSec = float64(total) / elapsed.Seconds()
	if lookups := st.Variants.Hits + st.Variants.Misses; lookups > 0 {
		entry.HitRate = float64(st.Variants.Hits) / float64(lookups)
	}
	if cfg.Recalibrations > 0 {
		recalRep := recalRec.report(elapsed)
		steadyRep := downSteady.report(elapsed)
		recalDownRep := downRecal.report(elapsed)
		calibStats := st.Calibration
		entry.Recalibrations = &recalRep
		entry.DownloadSteady = &steadyRep
		entry.DownloadDuringRecal = &recalDownRep
		entry.Calibration = &calibStats
	}
	if ctrl != nil {
		as := ctrl.Stats()
		entry.Admission = &as
	}
	if dedupStats != nil {
		entry.Dedup = dedupStats
		entry.DedupScrub = dedupScrub
		entry.DedupVerified = dupVerified
		entry.DedupMismatches = dupMismatches
		if dedupStats.BytesLogical > 0 {
			entry.StorageSavedRatio = float64(dedupStats.BytesSaved) / float64(dedupStats.BytesLogical)
		}
	}
	if sim != nil {
		ss := sim.Stats()
		entry.Similarity = &ss
		if q := similarQueries.Load(); q > 0 {
			entry.SimilarHitRate = float64(similarHits.Load()) / float64(q)
		}
	}
	if cfg.Mode == "storm" {
		sr := stormReport{
			Clients:      cfg.Clients,
			AttackerMult: cfg.AttackerMult,
			StormFromS:   stormFrom.Seconds(),
			StormToS:     stormTo.Seconds(),
			VictimSteady: victimSteady.report(elapsed),
			VictimStorm:  victimStorm.report(elapsed),
			Attacker:     attackRec.report(elapsed),
			AttackerShed: attackerShed.Load(),
		}
		sr.VictimErrors = sr.VictimSteady.Errors + sr.VictimStorm.Errors
		if entry.Admission != nil {
			sr.StormSheds = entry.Admission.ShedByReason[admission.ReasonStorm]
		}
		entry.Storm = &sr
	}

	fmt.Printf("\np3load: %d ops in %v (%.0f ops/s overall)\n", total, elapsed.Round(time.Millisecond), entry.TotalPerSec)
	fmt.Printf("%-14s %9s %7s %9s %9s %9s %9s %9s\n", "op", "count", "errors", "p50", "p95", "p99", "max", "ops/s")
	for k := opKind(0); k < numOps; k++ {
		rep, ok := entry.Ops[k.String()]
		if !ok {
			continue
		}
		fmt.Printf("%-14s %9d %7d %8.2fms %8.2fms %8.2fms %8.2fms %9.1f\n",
			k, rep.Count, rep.Errors, rep.P50Ms, rep.P95Ms, rep.P99Ms, rep.MaxMs, rep.PerSec)
		if rep.SampleError != "" {
			fmt.Printf("           first error: %s\n", rep.SampleError)
		}
	}
	if entry.DownloadSteady != nil {
		for _, row := range []struct {
			name string
			rep  *opReport
		}{{"dl steady", entry.DownloadSteady}, {"dl during-rec", entry.DownloadDuringRecal},
			{"recalibration", entry.Recalibrations}} {
			if row.rep.Count == 0 {
				continue
			}
			fmt.Printf("%-14s %9d %7d %8.2fms %8.2fms %8.2fms %8.2fms %9.1f\n",
				row.name, row.rep.Count, row.rep.Errors, row.rep.P50Ms, row.rep.P95Ms,
				row.rep.P99Ms, row.rep.MaxMs, row.rep.PerSec)
		}
		c := entry.Calibration
		fmt.Printf("calibration: epoch %d after %d flips (%d sweeps, %d probes/%d confirmed), %d stale serves, %d/%d warm hits/warmed, %d busy rejections\n",
			c.Epoch, recalFlips.Load(), c.Sweeps, c.Probes, c.ProbeHits,
			c.StaleServes, c.WarmHits, c.Warmed, calibBusy.Load())
	}
	if sr := entry.Storm; sr != nil {
		for _, row := range []struct {
			name string
			rep  *opReport
		}{{"victim steady", &sr.VictimSteady}, {"victim storm", &sr.VictimStorm},
			{"attacker", &sr.Attacker}} {
			if row.rep.Count == 0 {
				continue
			}
			fmt.Printf("%-14s %9d %7d %8.2fms %8.2fms %8.2fms %8.2fms %9.1f\n",
				row.name, row.rep.Count, row.rep.Errors, row.rep.P50Ms, row.rep.P95Ms,
				row.rep.P99Ms, row.rep.MaxMs, row.rep.PerSec)
		}
		fmt.Printf("storm: %d victim errors, attacker shed %d/%d requests (%d by storm clamp)\n",
			sr.VictimErrors, sr.AttackerShed, sr.Attacker.Count, sr.StormSheds)
	}
	if as := entry.Admission; as != nil {
		fmt.Printf("admission: %d/%d/%d admitted (cached/cold/calibrate), shed %d client-rate + %d storm + %d deadline + %d queue-full, %d clamped keys\n",
			as.Cached.Admitted, as.Cold.Admitted, as.Calibrate.Admitted,
			as.ShedByReason[admission.ReasonClientRate], as.ShedByReason[admission.ReasonStorm],
			as.ShedByReason[admission.ReasonDeadline], as.ShedByReason[admission.ReasonQueueFull],
			as.ClampedKeys)
	}
	if entry.Similarity != nil {
		fmt.Printf("similarity: %d indexed, %d ingests (%d inline, %d errors), %d queries, %.1f%% hit rate\n",
			entry.Similarity.Size, entry.Similarity.Ingests, entry.Similarity.InlineIngests,
			entry.Similarity.IngestErrors, entry.Similarity.Queries, 100*entry.SimilarHitRate)
	}
	fmt.Printf("caches: variants %.1f%% hit (%d/%d, %d coalesced, %d evicted), secrets %.1f%% hit (%d/%d)\n",
		100*entry.HitRate, st.Variants.Hits, st.Variants.Hits+st.Variants.Misses,
		st.Variants.Coalesced, st.Variants.Evictions,
		100*safeRate(st.Secrets.Hits, st.Secrets.Misses), st.Secrets.Hits, st.Secrets.Hits+st.Secrets.Misses)
	for i, sh := range entry.Shards {
		fmt.Printf("shard %d: %d reads (%d failed), %d repairs, %d puts (%d failed)\n",
			i, sh.Reads, sh.ReadFailures, sh.ReadRepairs, sh.Puts, sh.PutFailures)
	}
	for i, sh := range entry.ErasureShards {
		fmt.Printf("shard %d: %d share reads (%d failed), %d share puts (%d failed), %d repairs\n",
			i, sh.ShareReads, sh.ShareReadFailures, sh.SharePuts, sh.SharePutFailures, sh.ShareRepairs)
	}
	if entry.Repair != nil {
		r := entry.Repair
		fmt.Printf("repair: %d scrub cycles, %d degraded reads, %d shares repaired (%d missing, %d corrupt), %d/%d hints drained/parked, %d lost objects\n",
			r.ScrubCycles, r.DegradedReads, r.SharesRepaired, r.SharesMissing, r.SharesCorrupt,
			r.HintsDrained, r.HintsParked, r.LostObjects)
	}

	if *out != "" {
		if err := appendServingEntry(*out, entry); err != nil {
			return fmt.Errorf("writing %s: %w", *out, err)
		}
		fmt.Printf("p3load: appended run to %s\n", *out)
	}
	// Gated runs (the smoke preset, or -gate) fail CI on any op error.
	// Storm runs gate on the admission contract instead: shedding the
	// attacker is the desired outcome, so its 503s must not fail the run —
	// only victim errors do.
	var errCount uint64
	for k := opKind(0); k < numOps; k++ {
		errCount += recs[k].errs.Load()
	}
	errCount += recalRec.errs.Load()
	if cfg.Gate && cfg.Mode != "storm" && errCount > 0 {
		return fmt.Errorf("gated run saw %d op errors", errCount)
	}
	// The storm contract: victims never fail, the detector actually clamps
	// someone (storm-reason sheds), and the victims' download tail during
	// the storm stays within 2x of their steady-state tail.
	if cfg.Gate && entry.Storm != nil {
		sr := entry.Storm
		if sr.VictimErrors > 0 {
			return fmt.Errorf("storm run saw %d victim errors, want 0", sr.VictimErrors)
		}
		if sr.StormSheds == 0 {
			return fmt.Errorf("storm run never clamped the attacker (0 storm-reason sheds; attacker shed %d total)",
				sr.AttackerShed)
		}
		if sr.VictimSteady.Count > 0 && sr.VictimStorm.Count > 0 &&
			sr.VictimStorm.P99Ms > 2*sr.VictimSteady.P99Ms {
			return fmt.Errorf("storm run victim p99 %.2fms during the storm exceeds 2x steady-state %.2fms",
				sr.VictimStorm.P99Ms, sr.VictimSteady.P99Ms)
		}
	}
	// The recalibration contract: every forced pass must land its epoch
	// flip, and with a pre-warm budget the warmed hot set must actually
	// absorb post-flip traffic.
	if cfg.Gate && cfg.Recalibrations > 0 {
		if flips := recalFlips.Load(); flips < uint64(cfg.Recalibrations) {
			return fmt.Errorf("gated run flipped %d/%d forced recalibrations", flips, cfg.Recalibrations)
		}
		if cfg.WarmTopK > 0 && st.Calibration.WarmHits == 0 {
			return fmt.Errorf("gated run saw no warm hits after %d pre-warming epoch flips", cfg.Recalibrations)
		}
	}
	// The tail-latency gate: recalibration (or anything else) must not blow
	// the download p99 past the budget.
	if cfg.MaxDownP99 > 0 {
		if rep, ok := entry.Ops[opDownload.String()]; ok && rep.P99Ms > cfg.MaxDownP99Ms {
			return fmt.Errorf("download p99 %.2fms exceeds the %.2fms gate", rep.P99Ms, cfg.MaxDownP99Ms)
		}
	}
	// Data loss always fails a gated run: the erasure acceptance contract
	// is byte-perfect survival of the configured fault.
	if cfg.Gate && lost > 0 {
		return fmt.Errorf("gated run lost %d/%d corpus objects", lost, verified)
	}
	// The dedup contract: every content group byte-identical, real storage
	// savings recorded, and the refcount invariants intact after scrub.
	if cfg.Gate && dedupStats != nil {
		if dupMismatches > 0 {
			return fmt.Errorf("gated dedup run saw %d byte-identity mismatches over %d verified ids",
				dupMismatches, dupVerified)
		}
		if dedupStats.BytesSaved == 0 {
			return fmt.Errorf("gated dedup run saved no public-part bytes (%d uploads, %d dup hits)",
				dedupStats.Uploads, dedupStats.DupHits)
		}
		if dedupStats.NegativeRefs > 0 || dedupScrub.RefErrors > 0 {
			return fmt.Errorf("gated dedup run broke refcount invariants (%d negative refs, %d scrub ref errors)",
				dedupStats.NegativeRefs, dedupScrub.RefErrors)
		}
	}
	return nil
}

// fmtBytes renders a byte count with a binary unit suffix for the
// human-readable report lines.
func fmtBytes(n uint64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}

func safeRate(hits, misses uint64) float64 {
	if hits+misses == 0 {
		return 0
	}
	return float64(hits) / float64(hits+misses)
}

// appendServingEntry merges the run into the accumulating trajectory file.
func appendServingEntry(path string, entry servingEntry) error {
	var doc servingFile
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &doc); err != nil {
			return fmt.Errorf("existing file unparseable (move it aside): %w", err)
		}
	} else if !errors.Is(err, os.ErrNotExist) {
		return err
	}
	doc.Runs = append(doc.Runs, entry)
	data, err := json.MarshalIndent(&doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
