package main

// Record→replay round-trip (the trace contract): a run recorded with
// -trace-record and replayed with -trace-replay must re-dispatch the
// identical event sequence — same op counts, same per-op ordering, same
// targets — with only the timestamps differing. The whole harness runs
// in-process twice, which is what run()'s private FlagSet exists for.

import (
	"path/filepath"
	"testing"

	"p3/internal/trace"
)

// stripT drops the dispatch timestamp, the only field allowed to differ
// between a recording and its replayed re-recording.
func stripT(ev trace.Event) trace.Event {
	ev.TMs = 0
	return ev
}

func TestTraceRecordReplayRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("drives two full load runs")
	}
	dir := t.TempDir()
	first := filepath.Join(dir, "first.trace")
	second := filepath.Join(dir, "second.trace")

	// A short but real smoke run, recorded.
	if err := run([]string{
		"-scenario", "smoke", "-duration", "1s", "-workers", "2",
		"-seed", "7", "-out", "", "-trace-record", first,
	}); err != nil {
		t.Fatalf("recording run: %v", err)
	}
	l1, err := trace.ReadFile(first)
	if err != nil {
		t.Fatal(err)
	}
	if len(l1.Events) == 0 {
		t.Fatal("recording run produced no events")
	}
	if l1.Header.Seed != 7 || l1.Header.Scenario != "smoke" {
		t.Fatalf("recorded header %+v, want seed 7 scenario smoke", l1.Header)
	}

	// Replay it unpaced against a fresh stack, re-recording the dispatch.
	if err := run([]string{
		"-scenario", "smoke", "-out", "",
		"-trace-replay", first, "-trace-speed", "0", "-trace-record", second,
	}); err != nil {
		t.Fatalf("replaying run: %v", err)
	}
	l2, err := trace.ReadFile(second)
	if err != nil {
		t.Fatal(err)
	}

	// The replayed header must carry the recording's corpus shape forward.
	if l2.Header.Seed != l1.Header.Seed || l2.Header.Photos != l1.Header.Photos {
		t.Errorf("replay header %+v does not match recording %+v", l2.Header, l1.Header)
	}
	if len(l2.Events) != len(l1.Events) {
		t.Fatalf("replay dispatched %d events, recording had %d", len(l2.Events), len(l1.Events))
	}
	counts1, counts2 := map[string]int{}, map[string]int{}
	for i := range l1.Events {
		counts1[l1.Events[i].Op]++
		counts2[l2.Events[i].Op]++
		if stripT(l2.Events[i]) != stripT(l1.Events[i]) {
			t.Fatalf("event %d diverged:\n  recorded %+v\n  replayed %+v",
				i, l1.Events[i], l2.Events[i])
		}
	}
	for op, n := range counts1 {
		if counts2[op] != n {
			t.Errorf("op %s: replayed %d, recorded %d", op, counts2[op], n)
		}
	}
}

// TestDupHeavyGatedRun drives the dup-heavy preset in-process with the
// gates armed. The run itself enforces the differential contract — every
// deduplicated photo downloads byte-identical to its group's first copy,
// storage saved is non-zero, and the post-run scrub finds no refcount
// errors — so a nil error here is the whole assertion.
func TestDupHeavyGatedRun(t *testing.T) {
	if testing.Short() {
		t.Skip("drives a full load run")
	}
	if err := run([]string{
		"-preset", "dup-heavy", "-duration", "2s", "-photos", "16",
		"-seed", "11", "-gate", "-out", "",
	}); err != nil {
		t.Fatalf("gated dup-heavy run failed: %v", err)
	}
}

// TestDupHeavyErasureShardKillRun layers the dedup/similarity stack over
// the erasure-coded secret store and kills 2 of 6 shards mid-run: the
// gates require zero reconstruction mismatches and intact refcounts
// after the scrub, i.e. dedup loses nothing when the store degrades.
func TestDupHeavyErasureShardKillRun(t *testing.T) {
	if testing.Short() {
		t.Skip("drives a full load run with shard kills")
	}
	if err := run([]string{
		"-preset", "dup-heavy", "-duration", "3s", "-photos", "16",
		"-seed", "12", "-store-kind", "erasure", "-shard-kill", "-kill-shards", "2",
		"-scrub-interval", "250ms", "-secret-cache-bytes", "1",
		"-gate", "-out", "",
	}); err != nil {
		t.Fatalf("gated dup-heavy erasure run failed: %v", err)
	}
}
