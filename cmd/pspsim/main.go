// Command pspsim runs the simulated photo-sharing provider and, optionally,
// the blob store for secret parts, on local HTTP ports.
//
//	pspsim -addr :8080 -store-addr :8081 -pipeline facebook
//
// The PSP speaks:
//
//	POST /upload                 (body: JPEG)            → {"id": "..."}
//	GET  /photo/{id}?size=big    (or small, thumb)
//	GET  /photo/{id}?w=&h=&crop=x,y,w,h
//
// and the store:
//
//	PUT  /blob/{name}
//	GET  /blob/{name}
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"

	"p3/internal/psp"
)

func main() {
	addr := flag.String("addr", ":8080", "PSP listen address")
	storeAddr := flag.String("store-addr", ":8081", "blob store listen address (empty to disable)")
	pipeline := flag.String("pipeline", "facebook", "hidden image pipeline: facebook or flickr")
	flag.Parse()

	var pl psp.Pipeline
	switch *pipeline {
	case "facebook":
		pl = psp.FacebookLike()
	case "flickr":
		pl = psp.FlickrLike()
	default:
		fmt.Fprintf(os.Stderr, "pspsim: unknown pipeline %q\n", *pipeline)
		os.Exit(2)
	}

	if *storeAddr != "" {
		store := psp.NewBlobStore()
		go func() {
			fmt.Printf("pspsim: blob store on %s\n", *storeAddr)
			if err := http.ListenAndServe(*storeAddr, store); err != nil {
				fmt.Fprintf(os.Stderr, "pspsim: store: %v\n", err)
				os.Exit(1)
			}
		}()
	}
	fmt.Printf("pspsim: %s-like PSP on %s\n", *pipeline, *addr)
	if err := http.ListenAndServe(*addr, psp.NewServer(pl)); err != nil {
		fmt.Fprintf(os.Stderr, "pspsim: %v\n", err)
		os.Exit(1)
	}
}
