// Command p3 is a command-line interface to the P3 algorithm: split a JPEG
// into public and secret parts, join them back, and inspect coefficient
// statistics.
//
// Usage:
//
//	p3 keygen -key key.hex
//	p3 split -key key.hex -in photo.jpg -public pub.jpg -secret sec.p3
//	p3 join  -key key.hex -public pub.jpg -secret sec.p3 -out restored.jpg
//	p3 inspect -in pub.jpg
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"os"

	"p3"
	"p3/internal/core"
	"p3/internal/jpegx"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "keygen":
		err = keygen(os.Args[2:])
	case "split":
		err = split(os.Args[2:])
	case "join":
		err = join(os.Args[2:])
	case "inspect":
		err = inspect(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "p3: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: p3 <keygen|split|join|inspect> [flags]")
	os.Exit(2)
}

func keygen(args []string) error {
	fs := flag.NewFlagSet("keygen", flag.ExitOnError)
	out := fs.String("key", "p3.key", "file to write the hex key to")
	fs.Parse(args)
	key, err := p3.NewKey()
	if err != nil {
		return err
	}
	return os.WriteFile(*out, []byte(key.Hex()+"\n"), 0o600)
}

func loadKey(path string) (p3.Key, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return p3.Key{}, err
	}
	key, err := p3.ParseKey(string(data))
	if err != nil {
		return p3.Key{}, fmt.Errorf("key file %s: %w", path, err)
	}
	return key, nil
}

func split(args []string) error {
	fs := flag.NewFlagSet("split", flag.ExitOnError)
	keyPath := fs.String("key", "p3.key", "hex key file")
	in := fs.String("in", "", "input JPEG")
	pubOut := fs.String("public", "public.jpg", "public part output")
	secOut := fs.String("secret", "secret.p3", "sealed secret part output")
	threshold := fs.Int("t", p3.DefaultThreshold, "splitting threshold T")
	fs.Parse(args)
	if *in == "" {
		return fmt.Errorf("split: -in required")
	}
	key, err := loadKey(*keyPath)
	if err != nil {
		return err
	}
	codec, err := p3.New(key, p3.WithThreshold(*threshold))
	if err != nil {
		return err
	}
	jpegBytes, err := os.ReadFile(*in)
	if err != nil {
		return err
	}
	out, err := codec.SplitBytes(jpegBytes)
	if err != nil {
		return err
	}
	if err := os.WriteFile(*pubOut, out.PublicJPEG, 0o644); err != nil {
		return err
	}
	if err := os.WriteFile(*secOut, out.SecretBlob, 0o600); err != nil {
		return err
	}
	fmt.Printf("split T=%d: original %d B -> public %d B + secret %d B (sealed %d B, total %+.1f%%)\n",
		out.Threshold, len(jpegBytes), len(out.PublicJPEG), out.SecretJPEGLen, len(out.SecretBlob),
		100*(float64(len(out.PublicJPEG)+out.SecretJPEGLen)/float64(len(jpegBytes))-1))
	return nil
}

func join(args []string) error {
	fs := flag.NewFlagSet("join", flag.ExitOnError)
	keyPath := fs.String("key", "p3.key", "hex key file")
	pubIn := fs.String("public", "public.jpg", "public part")
	secIn := fs.String("secret", "secret.p3", "sealed secret part")
	out := fs.String("out", "restored.jpg", "reconstructed JPEG output")
	fs.Parse(args)
	key, err := loadKey(*keyPath)
	if err != nil {
		return err
	}
	codec, err := p3.New(key)
	if err != nil {
		return err
	}
	pub, err := os.Open(*pubIn)
	if err != nil {
		return err
	}
	defer pub.Close()
	sec, err := os.Open(*secIn)
	if err != nil {
		return err
	}
	defer sec.Close()
	// Reconstruct fully before touching the destination, so a failed join
	// (wrong key, tampered blob) never clobbers an existing output file.
	var joined bytes.Buffer
	if err := codec.Join(context.Background(), pub, sec, &joined); err != nil {
		return err
	}
	if err := os.WriteFile(*out, joined.Bytes(), 0o644); err != nil {
		return err
	}
	fmt.Printf("joined -> %s (%d B)\n", *out, joined.Len())
	return nil
}

func inspect(args []string) error {
	fs := flag.NewFlagSet("inspect", flag.ExitOnError)
	in := fs.String("in", "", "JPEG to inspect")
	fs.Parse(args)
	if *in == "" {
		return fmt.Errorf("inspect: -in required")
	}
	data, err := os.ReadFile(*in)
	if err != nil {
		return err
	}
	im, err := jpegx.Decode(bytes.NewReader(data))
	if err != nil {
		return err
	}
	sub, _ := im.DetectSubsampling()
	fmt.Printf("%s: %dx%d, %d components, %s, progressive=%v, %d markers\n",
		*in, im.Width, im.Height, len(im.Components), sub, im.Progressive, len(im.Markers))
	var zero, nonzero, dcZero int
	for ci := range im.Components {
		for bi := range im.Components[ci].Blocks {
			b := &im.Components[ci].Blocks[bi]
			if b[0] == 0 {
				dcZero++
			}
			for k := 1; k < 64; k++ {
				if b[k] == 0 {
					zero++
				} else {
					nonzero++
				}
			}
		}
	}
	fmt.Printf("AC sparsity: %.1f%% zero; DC zero in %d blocks", 100*float64(zero)/float64(zero+nonzero), dcZero)
	if guess := core.GuessThreshold(im); guess > 0 && dcZero > 0 {
		fmt.Printf("; looks like a P3 public part with T≈%d", guess)
	}
	fmt.Println()
	return nil
}
