// Command p3 is a command-line interface to the P3 algorithm: split a JPEG
// into public and secret parts, join them back, and inspect coefficient
// statistics. Video clips (P3MJ Motion-JPEG containers, §4.2) have the
// same verbs prefixed with v, plus pack/unpack to move between a clip and
// its individual JPEG frames.
//
// Usage:
//
//	p3 keygen -key key.hex
//	p3 split -key key.hex -in photo.jpg -public pub.jpg -secret sec.p3
//	p3 join  -key key.hex -public pub.jpg -secret sec.p3 -out restored.jpg
//	p3 inspect -in pub.jpg
//	p3 pack   -out clip.p3mj frame0.jpg frame1.jpg ...
//	p3 unpack -in clip.p3mj -prefix frame
//	p3 vsplit -key key.hex -in clip.p3mj -public pub.p3mj -secret sec.p3v
//	p3 vjoin  -key key.hex -public pub.p3mj -secret sec.p3v -out restored.p3mj
//	p3 vjoin  -key key.hex -public pub.p3mj -secret sec.p3v -frame 3 -out frame3.jpg
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"os"

	"p3"
	"p3/internal/core"
	"p3/internal/jpegx"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "keygen":
		err = keygen(os.Args[2:])
	case "split":
		err = split(os.Args[2:])
	case "join":
		err = join(os.Args[2:])
	case "inspect":
		err = inspect(os.Args[2:])
	case "pack":
		err = pack(os.Args[2:])
	case "unpack":
		err = unpack(os.Args[2:])
	case "vsplit":
		err = vsplit(os.Args[2:])
	case "vjoin":
		err = vjoin(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "p3: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: p3 <keygen|split|join|inspect|pack|unpack|vsplit|vjoin> [flags]")
	os.Exit(2)
}

func keygen(args []string) error {
	fs := flag.NewFlagSet("keygen", flag.ExitOnError)
	out := fs.String("key", "p3.key", "file to write the hex key to")
	fs.Parse(args)
	key, err := p3.NewKey()
	if err != nil {
		return err
	}
	return os.WriteFile(*out, []byte(key.Hex()+"\n"), 0o600)
}

func loadKey(path string) (p3.Key, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return p3.Key{}, err
	}
	key, err := p3.ParseKey(string(data))
	if err != nil {
		return p3.Key{}, fmt.Errorf("key file %s: %w", path, err)
	}
	return key, nil
}

func split(args []string) error {
	fs := flag.NewFlagSet("split", flag.ExitOnError)
	keyPath := fs.String("key", "p3.key", "hex key file")
	in := fs.String("in", "", "input JPEG")
	pubOut := fs.String("public", "public.jpg", "public part output")
	secOut := fs.String("secret", "secret.p3", "sealed secret part output")
	threshold := fs.Int("t", p3.DefaultThreshold, "splitting threshold T")
	fs.Parse(args)
	if *in == "" {
		return fmt.Errorf("split: -in required")
	}
	key, err := loadKey(*keyPath)
	if err != nil {
		return err
	}
	codec, err := p3.New(key, p3.WithThreshold(*threshold))
	if err != nil {
		return err
	}
	jpegBytes, err := os.ReadFile(*in)
	if err != nil {
		return err
	}
	out, err := codec.SplitBytes(jpegBytes)
	if err != nil {
		return err
	}
	if err := os.WriteFile(*pubOut, out.PublicJPEG, 0o644); err != nil {
		return err
	}
	if err := os.WriteFile(*secOut, out.SecretBlob, 0o600); err != nil {
		return err
	}
	fmt.Printf("split T=%d: original %d B -> public %d B + secret %d B (sealed %d B, total %+.1f%%)\n",
		out.Threshold, len(jpegBytes), len(out.PublicJPEG), out.SecretJPEGLen, len(out.SecretBlob),
		100*(float64(len(out.PublicJPEG)+out.SecretJPEGLen)/float64(len(jpegBytes))-1))
	return nil
}

func join(args []string) error {
	fs := flag.NewFlagSet("join", flag.ExitOnError)
	keyPath := fs.String("key", "p3.key", "hex key file")
	pubIn := fs.String("public", "public.jpg", "public part")
	secIn := fs.String("secret", "secret.p3", "sealed secret part")
	out := fs.String("out", "restored.jpg", "reconstructed JPEG output")
	fs.Parse(args)
	key, err := loadKey(*keyPath)
	if err != nil {
		return err
	}
	codec, err := p3.New(key)
	if err != nil {
		return err
	}
	pub, err := os.Open(*pubIn)
	if err != nil {
		return err
	}
	defer pub.Close()
	sec, err := os.Open(*secIn)
	if err != nil {
		return err
	}
	defer sec.Close()
	// Reconstruct fully before touching the destination, so a failed join
	// (wrong key, tampered blob) never clobbers an existing output file.
	var joined bytes.Buffer
	if err := codec.Join(context.Background(), pub, sec, &joined); err != nil {
		return err
	}
	if err := os.WriteFile(*out, joined.Bytes(), 0o644); err != nil {
		return err
	}
	fmt.Printf("joined -> %s (%d B)\n", *out, joined.Len())
	return nil
}

// pack serializes JPEG frames into a P3MJ clip.
func pack(args []string) error {
	fs := flag.NewFlagSet("pack", flag.ExitOnError)
	out := fs.String("out", "clip.p3mj", "clip output path")
	fs.Parse(args)
	if fs.NArg() == 0 {
		return fmt.Errorf("pack: no frames given (usage: p3 pack -out clip.p3mj frame0.jpg ...)")
	}
	frames := make([][]byte, 0, fs.NArg())
	for _, path := range fs.Args() {
		b, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		frames = append(frames, b)
	}
	clip, err := p3.PackMJPEG(frames)
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, clip, 0o644); err != nil {
		return err
	}
	fmt.Printf("packed %d frames -> %s (%d B)\n", len(frames), *out, len(clip))
	return nil
}

// unpack writes every frame of a clip as <prefix>_NNNN.jpg.
func unpack(args []string) error {
	fs := flag.NewFlagSet("unpack", flag.ExitOnError)
	in := fs.String("in", "", "clip to unpack")
	prefix := fs.String("prefix", "frame", "output filename prefix")
	fs.Parse(args)
	if *in == "" {
		return fmt.Errorf("unpack: -in required")
	}
	clip, err := os.ReadFile(*in)
	if err != nil {
		return err
	}
	frames, err := p3.UnpackMJPEG(clip)
	if err != nil {
		return err
	}
	for i, f := range frames {
		name := fmt.Sprintf("%s_%04d.jpg", *prefix, i)
		if err := os.WriteFile(name, f, 0o644); err != nil {
			return err
		}
	}
	fmt.Printf("unpacked %d frames from %s\n", len(frames), *in)
	return nil
}

// vsplit splits every frame of a clip, producing a public clip and one
// sealed secret container.
func vsplit(args []string) error {
	fs := flag.NewFlagSet("vsplit", flag.ExitOnError)
	keyPath := fs.String("key", "p3.key", "hex key file")
	in := fs.String("in", "", "input P3MJ clip")
	pubOut := fs.String("public", "public.p3mj", "public clip output")
	secOut := fs.String("secret", "secret.p3v", "sealed secret container output")
	threshold := fs.Int("t", p3.DefaultThreshold, "splitting threshold T")
	fs.Parse(args)
	if *in == "" {
		return fmt.Errorf("vsplit: -in required")
	}
	key, err := loadKey(*keyPath)
	if err != nil {
		return err
	}
	codec, err := p3.New(key, p3.WithThreshold(*threshold))
	if err != nil {
		return err
	}
	clip, err := os.ReadFile(*in)
	if err != nil {
		return err
	}
	out, err := codec.SplitVideoBytes(clip)
	if err != nil {
		return err
	}
	if err := os.WriteFile(*pubOut, out.PublicMJPEG, 0o644); err != nil {
		return err
	}
	if err := os.WriteFile(*secOut, out.SecretBlob, 0o600); err != nil {
		return err
	}
	fmt.Printf("vsplit T=%d: %d frames, %d B -> public %d B + secret %d B (sealed %d B, total %+.1f%%)\n",
		out.Threshold, out.Frames, len(clip), len(out.PublicMJPEG), out.SecretStreamLen, len(out.SecretBlob),
		100*(float64(len(out.PublicMJPEG)+out.SecretStreamLen)/float64(len(clip))-1))
	return nil
}

// vjoin reconstructs a clip — or, with -frame, a single frame as a JPEG —
// from the public clip and the sealed secret container.
func vjoin(args []string) error {
	fs := flag.NewFlagSet("vjoin", flag.ExitOnError)
	keyPath := fs.String("key", "p3.key", "hex key file")
	pubIn := fs.String("public", "public.p3mj", "public clip")
	secIn := fs.String("secret", "secret.p3v", "sealed secret container")
	out := fs.String("out", "restored.p3mj", "output path (clip, or JPEG with -frame)")
	frame := fs.Int("frame", -1, "join only this frame, writing a standalone JPEG")
	fs.Parse(args)
	key, err := loadKey(*keyPath)
	if err != nil {
		return err
	}
	codec, err := p3.New(key)
	if err != nil {
		return err
	}
	pub, err := os.ReadFile(*pubIn)
	if err != nil {
		return err
	}
	sec, err := os.ReadFile(*secIn)
	if err != nil {
		return err
	}
	if *frame >= 0 {
		b, err := codec.JoinVideoFrame(pub, sec, *frame)
		if err != nil {
			return err
		}
		if err := os.WriteFile(*out, b, 0o644); err != nil {
			return err
		}
		fmt.Printf("joined frame %d -> %s (%d B)\n", *frame, *out, len(b))
		return nil
	}
	joined, err := codec.JoinVideoBytes(pub, sec)
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, joined, 0o644); err != nil {
		return err
	}
	n, _ := p3.MJPEGFrameCount(joined)
	fmt.Printf("joined %d frames -> %s (%d B)\n", n, *out, len(joined))
	return nil
}

func inspect(args []string) error {
	fs := flag.NewFlagSet("inspect", flag.ExitOnError)
	in := fs.String("in", "", "JPEG to inspect")
	fs.Parse(args)
	if *in == "" {
		return fmt.Errorf("inspect: -in required")
	}
	data, err := os.ReadFile(*in)
	if err != nil {
		return err
	}
	im, err := jpegx.Decode(bytes.NewReader(data))
	if err != nil {
		return err
	}
	sub, _ := im.DetectSubsampling()
	fmt.Printf("%s: %dx%d, %d components, %s, progressive=%v, %d markers\n",
		*in, im.Width, im.Height, len(im.Components), sub, im.Progressive, len(im.Markers))
	var zero, nonzero, dcZero int
	for ci := range im.Components {
		for bi := range im.Components[ci].Blocks {
			b := &im.Components[ci].Blocks[bi]
			if b[0] == 0 {
				dcZero++
			}
			for k := 1; k < 64; k++ {
				if b[k] == 0 {
					zero++
				} else {
					nonzero++
				}
			}
		}
	}
	fmt.Printf("AC sparsity: %.1f%% zero; DC zero in %d blocks", 100*float64(zero)/float64(zero+nonzero), dcZero)
	if guess := core.GuessThreshold(im); guess > 0 && dcZero > 0 {
		fmt.Printf("; looks like a P3 public part with T≈%d", guess)
	}
	fmt.Println()
	return nil
}
