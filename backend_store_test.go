package p3

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"p3/internal/psp"
)

var storeCtx = context.Background()

func TestDiskSecretStoreRoundtrip(t *testing.T) {
	s, err := NewDiskSecretStore(filepath.Join(t.TempDir(), "secrets"))
	if err != nil {
		t.Fatal(err)
	}
	blob := []byte("sealed bytes")
	if err := s.PutSecret(storeCtx, "p00000001", blob); err != nil {
		t.Fatal(err)
	}
	got, err := s.GetSecret(storeCtx, "p00000001")
	if err != nil || !bytes.Equal(got, blob) {
		t.Fatalf("GetSecret = %q, %v", got, err)
	}
	// Overwrite is atomic replace.
	if err := s.PutSecret(storeCtx, "p00000001", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if got, _ := s.GetSecret(storeCtx, "p00000001"); string(got) != "v2" {
		t.Errorf("after overwrite: %q", got)
	}
	if err := s.DeleteSecret(storeCtx, "p00000001"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.GetSecret(storeCtx, "p00000001"); !IsNotFound(err) {
		t.Errorf("deleted blob err = %v, want NotFoundError", err)
	}
	if err := s.DeleteSecret(storeCtx, "p00000001"); err != nil {
		t.Errorf("double delete: %v", err)
	}
}

// TestDiskSecretStorePathSafety stores under hostile PSP-assigned IDs and
// verifies every blob stays a flat file inside the store directory.
func TestDiskSecretStorePathSafety(t *testing.T) {
	root := t.TempDir()
	dir := filepath.Join(root, "secrets")
	s, err := NewDiskSecretStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	// The last entry is longer than NAME_MAX allows base64-encoded; it must
	// land on the hash-named fallback, still one flat file.
	hostile := []string{"a/../../escape", "../escape", "/etc/passwd", "..", "a/b/c", "CON", ".hidden",
		strings.Repeat("long/", 80)}
	for i, id := range hostile {
		blob := []byte(fmt.Sprintf("blob %d", i))
		if err := s.PutSecret(storeCtx, id, blob); err != nil {
			t.Fatalf("Put %q: %v", id, err)
		}
		if got, err := s.GetSecret(storeCtx, id); err != nil || !bytes.Equal(got, blob) {
			t.Fatalf("Get %q = %q, %v", id, got, err)
		}
	}
	// Nothing may exist outside dir, and dir must contain only flat files.
	entries, err := os.ReadDir(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "secrets" {
		t.Fatalf("store escaped its directory: %v", entries)
	}
	inside, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(inside) != len(hostile) {
		t.Fatalf("%d files for %d ids", len(inside), len(hostile))
	}
	for _, e := range inside {
		if e.IsDir() {
			t.Errorf("unexpected subdirectory %q", e.Name())
		}
	}
}

// TestDiskSecretStoreCrashSafety simulates a crash between the temp-file
// write and the rename: the partial blob must never become visible, and the
// store must recover cleanly.
func TestDiskSecretStoreCrashSafety(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "secrets")
	s, err := NewDiskSecretStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PutSecret(storeCtx, "id", []byte("committed v1")); err != nil {
		t.Fatal(err)
	}

	crash := errors.New("simulated crash mid-write")
	s.testCrashAfterWrite = func() error { return crash }
	if err := s.PutSecret(storeCtx, "id", []byte("torn v2")); !errors.Is(err, crash) {
		t.Fatalf("crashing put err = %v", err)
	}
	if err := s.PutSecret(storeCtx, "id2", []byte("torn new")); !errors.Is(err, crash) {
		t.Fatalf("crashing put err = %v", err)
	}
	s.testCrashAfterWrite = nil

	// The old blob survives untouched; the never-committed one is absent.
	if got, err := s.GetSecret(storeCtx, "id"); err != nil || string(got) != "committed v1" {
		t.Errorf("after crash, Get(id) = %q, %v; want old committed value", got, err)
	}
	if _, err := s.GetSecret(storeCtx, "id2"); !IsNotFound(err) {
		t.Errorf("partial blob visible after crash: err = %v", err)
	}

	// Reopening (the post-crash restart) sweeps stranded temp files — but
	// only clearly abandoned ones, so a fresh temp (possibly another live
	// instance's in-flight write on a shared directory) survives.
	if _, err := NewDiskSecretStore(dir); err != nil {
		t.Fatal(err)
	}
	fresh, _ := filepath.Glob(filepath.Join(dir, "put-*.tmp"))
	if len(fresh) == 0 {
		t.Error("fresh temp files were swept; a concurrent writer's rename would now fail")
	}
	// Age the strandings past the threshold: the next open discards them.
	old := time.Now().Add(-2 * time.Hour)
	for _, f := range fresh {
		if err := os.Chtimes(f, old, old); err != nil {
			t.Fatal(err)
		}
	}
	s2, err := NewDiskSecretStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if stale, _ := filepath.Glob(filepath.Join(dir, "put-*.tmp")); len(stale) != 0 {
		t.Errorf("stranded temp files survived reopen: %v", stale)
	}
	if err := s2.PutSecret(storeCtx, "id2", []byte("retried")); err != nil {
		t.Fatal(err)
	}
	if got, err := s2.GetSecret(storeCtx, "id2"); err != nil || string(got) != "retried" {
		t.Errorf("retry after crash = %q, %v", got, err)
	}
}

// failingStore wraps a SecretStore, failing every call while down.
type failingStore struct {
	SecretStore
	down bool
}

func (f *failingStore) PutSecret(ctx context.Context, id string, blob []byte) error {
	if f.down {
		return errors.New("shard down")
	}
	return f.SecretStore.PutSecret(ctx, id, blob)
}

func (f *failingStore) GetSecret(ctx context.Context, id string) ([]byte, error) {
	if f.down {
		return nil, errors.New("shard down")
	}
	return f.SecretStore.GetSecret(ctx, id)
}

func TestShardedSecretStoreSpreadsKeys(t *testing.T) {
	shards := []SecretStore{NewMemorySecretStore(), NewMemorySecretStore(), NewMemorySecretStore()}
	s, err := NewShardedSecretStore(shards)
	if err != nil {
		t.Fatal(err)
	}
	const n = 300
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("p%08d", i)
		if err := s.PutSecret(storeCtx, id, []byte(id)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("p%08d", i)
		got, err := s.GetSecret(storeCtx, id)
		if err != nil || string(got) != id {
			t.Fatalf("Get %q = %q, %v", id, got, err)
		}
	}
	// Consistent hashing should land a meaningful share on every shard.
	for i, shard := range shards {
		m := shard.(*MemorySecretStore)
		m.mu.RLock()
		count := len(m.blobs)
		m.mu.RUnlock()
		if count < n/10 {
			t.Errorf("shard %d holds %d/%d blobs — distribution badly skewed", i, count, n)
		}
	}
	if _, err := s.GetSecret(storeCtx, "absent"); !IsNotFound(err) {
		t.Errorf("missing blob err = %v, want NotFoundError", err)
	}
}

func TestShardedSecretStoreReplicationSurvivesShardLoss(t *testing.T) {
	backing := []*failingStore{
		{SecretStore: NewMemorySecretStore()},
		{SecretStore: NewMemorySecretStore()},
		{SecretStore: NewMemorySecretStore()},
	}
	s, err := NewShardedSecretStore(
		[]SecretStore{backing[0], backing[1], backing[2]},
		WithShardReplicas(2))
	if err != nil {
		t.Fatal(err)
	}
	const n = 50
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("p%08d", i)
		if err := s.PutSecret(storeCtx, id, []byte(id)); err != nil {
			t.Fatal(err)
		}
	}
	// Any single shard down: every blob still readable from its replica.
	for down := range backing {
		backing[down].down = true
		for i := 0; i < n; i++ {
			id := fmt.Sprintf("p%08d", i)
			got, err := s.GetSecret(storeCtx, id)
			if err != nil || string(got) != id {
				t.Fatalf("shard %d down: Get %q = %q, %v", down, id, got, err)
			}
		}
		backing[down].down = false
	}
}

func TestShardedSecretStoreReadRepair(t *testing.T) {
	primaryDown := &failingStore{SecretStore: NewMemorySecretStore()}
	other := &failingStore{SecretStore: NewMemorySecretStore()}
	s, err := NewShardedSecretStore([]SecretStore{primaryDown, other}, WithShardReplicas(2))
	if err != nil {
		t.Fatal(err)
	}
	// Pick an ID whose preferred (first) replica is shard 0: reads probe it
	// first, which is where read-repair can heal a missing copy.
	id := ""
	for i := 0; i < 1000; i++ {
		cand := fmt.Sprintf("p%08d", i)
		if s.replicasFor(cand)[0] == 0 {
			id = cand
			break
		}
	}
	if id == "" {
		t.Fatal("no id with shard 0 as primary in 1000 tries")
	}

	// Upload while the primary is down: the write lands on the replica only.
	primaryDown.down = true
	if err := s.PutSecret(storeCtx, id, []byte("blob")); err != nil {
		t.Fatalf("put with one shard down: %v", err)
	}
	primaryDown.down = false

	// First read probes the (empty) primary, falls through to the replica,
	// and heals the primary...
	if got, err := s.GetSecret(storeCtx, id); err != nil || string(got) != "blob" {
		t.Fatalf("Get = %q, %v", got, err)
	}
	// ...so afterwards both shards hold the blob and the read no longer
	// depends on the shard that served the repair.
	other.down = true
	if got, err := s.GetSecret(storeCtx, id); err != nil || string(got) != "blob" {
		t.Errorf("after read-repair, Get with original holder down = %q, %v", got, err)
	}
}

func TestShardedSecretStoreValidation(t *testing.T) {
	if _, err := NewShardedSecretStore(nil); err == nil {
		t.Error("zero shards accepted")
	}
	if _, err := NewShardedSecretStore([]SecretStore{NewMemorySecretStore()}, WithShardReplicas(2)); err == nil {
		t.Error("replicas > shards accepted")
	}
	if _, err := NewShardedSecretStore([]SecretStore{NewMemorySecretStore()}, WithShardReplicas(0)); err == nil {
		t.Error("zero replicas accepted")
	}
}

// TestHTTPBackendsEscapeIDs sends hostile IDs through the real HTTP
// backends against the real servers: the ID must stay one opaque key — no
// blob-namespace escape, no path-segment splitting — and round-trip intact.
func TestHTTPBackendsEscapeIDs(t *testing.T) {
	store := psp.NewBlobStore()
	srv := httptest.NewServer(store)
	defer srv.Close()
	client := NewHTTPSecretStore(srv.URL)

	for _, id := range []string{"a/../b", "../../x", "a b?c=d", "x%2Fy", "plain"} {
		blob := []byte("blob for " + id)
		if err := client.PutSecret(storeCtx, id, blob); err != nil {
			t.Fatalf("Put %q: %v", id, err)
		}
		if !store.Has(id) {
			t.Errorf("id %q not stored under its own name (namespace escape?)", id)
		}
		got, err := client.GetSecret(storeCtx, id)
		if err != nil || !bytes.Equal(got, blob) {
			t.Errorf("Get %q = %q, %v", id, got, err)
		}
		if err := client.DeleteSecret(storeCtx, id); err != nil {
			t.Errorf("Delete %q: %v", id, err)
		}
		if store.Has(id) {
			t.Errorf("id %q survived delete", id)
		}
	}

	// A traversal-shaped ID must not resolve to another blob's name.
	if err := client.PutSecret(storeCtx, "victim", []byte("safe")); err != nil {
		t.Fatal(err)
	}
	if err := client.PutSecret(storeCtx, "blob/../victim", []byte("overwritten")); err != nil {
		t.Fatal(err)
	}
	got, err := client.GetSecret(storeCtx, "victim")
	if err != nil || string(got) != "safe" {
		t.Errorf("traversal-shaped id clobbered another blob: %q, %v", got, err)
	}
}

func TestHTTPSecretStoreNotFoundTyped(t *testing.T) {
	srv := httptest.NewServer(psp.NewBlobStore())
	defer srv.Close()
	client := NewHTTPSecretStore(srv.URL)
	_, err := client.GetSecret(storeCtx, "absent")
	var nf *NotFoundError
	if !errors.As(err, &nf) {
		t.Fatalf("err = %v, want *NotFoundError", err)
	}
	if nf.Kind != "secret" || nf.ID != "absent" {
		t.Errorf("NotFoundError = %+v", nf)
	}
}

// TestShardedSecretStoreDeleteSurvivesShardOutage is the resurrection
// regression: a DeleteSecret that misses a down replica used to be undone
// when that replica revived — read-repair copied the stale blob back
// everywhere. With tombstone records the delete wins and is itself
// repaired onto the revived shard.
func TestShardedSecretStoreDeleteSurvivesShardOutage(t *testing.T) {
	a := &failingStore{SecretStore: NewMemorySecretStore()}
	b := &failingStore{SecretStore: NewMemorySecretStore()}
	s, err := NewShardedSecretStore([]SecretStore{a, b}, WithShardReplicas(2))
	if err != nil {
		t.Fatal(err)
	}
	const id = "photo"
	if err := s.PutSecret(storeCtx, id, []byte("blob")); err != nil {
		t.Fatal(err)
	}

	// Delete while one replica sleeps: only the live replica sees it.
	a.down = true
	if err := s.DeleteSecret(storeCtx, id); err != nil {
		t.Fatalf("delete with one replica down: %v", err)
	}
	a.down = false

	// The revived replica still holds the stale blob. Without tombstones
	// this read would resurrect it; the tombstone must outvote it instead.
	if _, err := s.GetSecret(storeCtx, id); !IsNotFound(err) {
		t.Fatalf("deleted blob resurrected off revived replica: err = %v, want NotFoundError", err)
	}

	// That read repaired the tombstone onto the revived replica, so the
	// delete now survives losing the replica that originally recorded it.
	b.down = true
	if _, err := s.GetSecret(storeCtx, id); !IsNotFound(err) {
		t.Errorf("delete lost with original tombstone holder down: err = %v, want NotFoundError", err)
	}
	b.down = false
}

// rendezvousStore blocks every PutSecret until `enter` reaches zero — a
// barrier that only clears when all expected replica writes have started.
type rendezvousStore struct {
	SecretStore
	enter *sync.WaitGroup
}

func (r *rendezvousStore) PutSecret(ctx context.Context, id string, blob []byte) error {
	r.enter.Done()
	r.enter.Wait()
	return r.SecretStore.PutSecret(ctx, id, blob)
}

// TestShardedSecretStorePutFansOutConcurrently is the sequential-write
// regression: replica writes used to run one after another, so a write
// latency was the sum over replicas. Two replicas that each block until
// the other's write has started deadlock under sequential fan-out and
// clear immediately under concurrent fan-out.
func TestShardedSecretStorePutFansOutConcurrently(t *testing.T) {
	var enter sync.WaitGroup
	enter.Add(2)
	s, err := NewShardedSecretStore([]SecretStore{
		&rendezvousStore{SecretStore: NewMemorySecretStore(), enter: &enter},
		&rendezvousStore{SecretStore: NewMemorySecretStore(), enter: &enter},
	}, WithShardReplicas(2))
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- s.PutSecret(storeCtx, "id", []byte("blob")) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("PutSecret stuck: replica writes are not concurrent")
	}
}

func TestMemorySecretStoreDelete(t *testing.T) {
	m := NewMemorySecretStore()
	if err := m.PutSecret(storeCtx, "id", []byte("b")); err != nil {
		t.Fatal(err)
	}
	if err := m.DeleteSecret(storeCtx, "id"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.GetSecret(storeCtx, "id"); !IsNotFound(err) {
		t.Errorf("err = %v, want NotFoundError", err)
	}
}
