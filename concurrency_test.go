package p3

import (
	"bytes"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"p3/internal/core"
	"p3/internal/jpegx"
)

// The worker-pool refactor's contract: parallelism changes the wall clock,
// never the bytes. These tests pin that, and `go test -race` (which CI runs)
// guards the pool itself.

// secretJPEG opens a sealed blob and returns the inner secret-part JPEG;
// blobs themselves are not comparable across calls (fresh IV per seal).
func secretJPEG(t *testing.T, codec *Codec, blob []byte) []byte {
	t.Helper()
	_, sec, err := core.OpenSecret(core.Key(codec.Key()), blob)
	if err != nil {
		t.Fatal(err)
	}
	return sec
}

func TestCodecParallelMatchesSequential(t *testing.T) {
	jpegBytes, _ := testJPEG(t, 21, 320, 240, jpegx.Sub420)
	key, err := NewKey()
	if err != nil {
		t.Fatal(err)
	}
	seq, err := New(key, WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	par, err := New(key, WithParallelism(4))
	if err != nil {
		t.Fatal(err)
	}

	sSeq, err := seq.SplitBytes(jpegBytes)
	if err != nil {
		t.Fatal(err)
	}
	sPar, err := par.SplitBytes(jpegBytes)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sSeq.PublicJPEG, sPar.PublicJPEG) {
		t.Error("parallel public part differs from sequential")
	}
	if !bytes.Equal(secretJPEG(t, seq, sSeq.SecretBlob), secretJPEG(t, par, sPar.SecretBlob)) {
		t.Error("parallel secret part differs from sequential")
	}

	jSeq, err := seq.JoinBytes(sSeq.PublicJPEG, sSeq.SecretBlob)
	if err != nil {
		t.Fatal(err)
	}
	jPar, err := par.JoinBytes(sSeq.PublicJPEG, sSeq.SecretBlob)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(jSeq, jPar) {
		t.Error("parallel join differs from sequential")
	}

	tr := Resize(160, 120, FilterLanczos).Then(Sharpen(1, 0.5))
	served := mustTransformJPEG(t, sSeq.PublicJPEG, tr)
	pSeq, err := seq.JoinProcessedBytes(served, sSeq.SecretBlob, tr)
	if err != nil {
		t.Fatal(err)
	}
	pPar, err := par.JoinProcessedBytes(served, sSeq.SecretBlob, tr)
	if err != nil {
		t.Fatal(err)
	}
	if !imagesIdentical(pSeq, pPar) {
		t.Error("parallel processed join differs from sequential")
	}
}

// mustTransformJPEG fabricates the PSP-served variant: decode, apply t in
// the pixel domain, hand back the pixels re-encoded losslessly enough for an
// exact-comparison test (the same served bytes feed both codecs, so any
// encoding loss cancels).
func mustTransformJPEG(t *testing.T, publicJPEG []byte, tr Transform) []byte {
	t.Helper()
	img, err := DecodeImage(bytes.NewReader(publicJPEG))
	if err != nil {
		t.Fatal(err)
	}
	out := tr.Apply(img)
	var buf bytes.Buffer
	if err := out.EncodeJPEG(&buf, 92); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// imagesIdentical requires exact float equality on every sample: the
// parallel pipeline must not even reorder floating-point additions.
func imagesIdentical(a, b *Image) bool {
	if a.pix.Width != b.pix.Width || a.pix.Height != b.pix.Height || len(a.pix.Planes) != len(b.pix.Planes) {
		return false
	}
	for pi := range a.pix.Planes {
		for i := range a.pix.Planes[pi] {
			if a.pix.Planes[pi][i] != b.pix.Planes[pi][i] {
				return false
			}
		}
	}
	return true
}

// TestCodecConcurrentHammer drives one shared Codec from many goroutines
// mixing all three operations and checks every output against golden bytes
// computed sequentially up front. Run under -race (CI does) this is the
// regression net over the shared worker pool and the pooled scratches.
func TestCodecConcurrentHammer(t *testing.T) {
	jpegBytes, _ := testJPEG(t, 22, 160, 120, jpegx.Sub420)
	key, err := NewKey()
	if err != nil {
		t.Fatal(err)
	}
	shared, err := New(key, WithParallelism(3))
	if err != nil {
		t.Fatal(err)
	}
	golden, err := shared.SplitBytes(jpegBytes)
	if err != nil {
		t.Fatal(err)
	}
	goldenSecret := secretJPEG(t, shared, golden.SecretBlob)
	goldenJoin, err := shared.JoinBytes(golden.PublicJPEG, golden.SecretBlob)
	if err != nil {
		t.Fatal(err)
	}
	tr := Resize(80, 60, FilterTriangle)
	served := mustTransformJPEG(t, golden.PublicJPEG, tr)
	goldenProcessed, err := shared.JoinProcessedBytes(served, golden.SecretBlob, tr)
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 8
	const iters = 4
	var wg sync.WaitGroup
	errc := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				switch (g + it) % 3 {
				case 0:
					out, err := shared.SplitBytes(jpegBytes)
					if err != nil {
						errc <- err
						return
					}
					if !bytes.Equal(out.PublicJPEG, golden.PublicJPEG) {
						errc <- fmt.Errorf("goroutine %d: public part diverged", g)
						return
					}
					if !bytes.Equal(secretJPEG(t, shared, out.SecretBlob), goldenSecret) {
						errc <- fmt.Errorf("goroutine %d: secret part diverged", g)
						return
					}
				case 1:
					out, err := shared.JoinBytes(golden.PublicJPEG, golden.SecretBlob)
					if err != nil {
						errc <- err
						return
					}
					if !bytes.Equal(out, goldenJoin) {
						errc <- fmt.Errorf("goroutine %d: join diverged", g)
						return
					}
				default:
					out, err := shared.JoinProcessedBytes(served, golden.SecretBlob, tr)
					if err != nil {
						errc <- err
						return
					}
					if !imagesIdentical(out, goldenProcessed) {
						errc <- fmt.Errorf("goroutine %d: processed join diverged", g)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

func TestWithParallelismValidation(t *testing.T) {
	key, err := NewKey()
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{-1, 0, MaxParallelism + 1} {
		_, err := New(key, WithParallelism(n))
		var perr *ParallelismError
		if !errors.As(err, &perr) {
			t.Errorf("WithParallelism(%d): got %v, want *ParallelismError", n, err)
		} else if perr.Parallelism != n {
			t.Errorf("WithParallelism(%d): error reports %d", n, perr.Parallelism)
		}
	}
	c, err := New(key, WithParallelism(2))
	if err != nil {
		t.Fatal(err)
	}
	if c.Parallelism() != 2 {
		t.Errorf("Parallelism() = %d, want 2", c.Parallelism())
	}
}

// TestHTTPBackendErrorSnippet pins the satellite behavior: non-2xx errors
// quote a bounded body snippet, and the body is drained so the connection
// can be reused.
func TestHTTPBackendErrorSnippet(t *testing.T) {
	long := strings.Repeat("x", 4*errorBodySnippetLen)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusBadGateway)
		fmt.Fprint(w, "upstream exploded: "+long)
	}))
	defer srv.Close()

	ps := NewHTTPPhotoService(srv.URL)
	_, err := ps.FetchPhoto(t.Context(), "p1", PhotoVariant{})
	if err == nil {
		t.Fatal("want error for 502")
	}
	msg := err.Error()
	if !strings.Contains(msg, "502") || !strings.Contains(msg, "upstream exploded") {
		t.Errorf("error %q misses status or body snippet", msg)
	}
	if len(msg) > errorBodySnippetLen+128 {
		t.Errorf("error is %d bytes; snippet not bounded", len(msg))
	}

	if _, err := ps.UploadPhoto(t.Context(), []byte("jpeg")); err == nil || !strings.Contains(err.Error(), "upstream exploded") {
		t.Errorf("upload error %v misses body snippet", err)
	}
	ss := NewHTTPSecretStore(srv.URL)
	if err := ss.PutSecret(t.Context(), "s1", []byte("blob")); err == nil || !strings.Contains(err.Error(), "upstream exploded") {
		t.Errorf("put error %v misses body snippet", err)
	}
	if _, err := ss.GetSecret(t.Context(), "s1"); err == nil || !strings.Contains(err.Error(), "upstream exploded") {
		t.Errorf("get error %v misses body snippet", err)
	}
}
