package p3

import (
	"bytes"
	"context"
	"errors"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"net/url"
	"path"
	"strconv"
	"strings"
	"testing"

	"p3/internal/core"
	"p3/internal/jpegx"
	"p3/internal/psp"
	"p3/internal/vision"
)

func TestStreamingRoundTrip(t *testing.T) {
	jpegBytes, coeffs := testJPEG(t, 11, 320, 240, jpegx.Sub420)
	codec := newTestCodec(t, WithThreshold(20))
	ctx := context.Background()
	split, err := codec.Split(ctx, bytes.NewReader(jpegBytes))
	if err != nil {
		t.Fatal(err)
	}
	if split.Threshold != 20 {
		t.Errorf("threshold %d, want 20", split.Threshold)
	}
	var joined bytes.Buffer
	if err := codec.Join(ctx, bytes.NewReader(split.PublicJPEG), bytes.NewReader(split.SecretBlob), &joined); err != nil {
		t.Fatal(err)
	}
	img, err := DecodeImage(bytes.NewReader(joined.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if img.Width() != coeffs.Width || img.Height() != coeffs.Height {
		t.Errorf("joined %dx%d, want %dx%d", img.Width(), img.Height(), coeffs.Width, coeffs.Height)
	}
	psnr, err := vision.PSNR(coeffs.ToPlanar(), img.pix)
	if err != nil {
		t.Fatal(err)
	}
	if psnr < 45 {
		t.Errorf("streaming round trip PSNR %.1f dB, want near-lossless", psnr)
	}
}

func TestContextCancellation(t *testing.T) {
	jpegBytes, _ := testJPEG(t, 12, 64, 64, jpegx.Sub420)
	codec := newTestCodec(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := codec.Split(ctx, bytes.NewReader(jpegBytes)); !errors.Is(err, context.Canceled) {
		t.Errorf("canceled split returned %v, want context.Canceled", err)
	}
}

// TestJoinProcessedPublicOnly drives JoinProcessed end to end using nothing
// but exported p3 identifiers for every value handed to the API.
func TestJoinProcessedPublicOnly(t *testing.T) {
	jpegBytes, coeffs := testJPEG(t, 13, 200, 160, jpegx.Sub420)
	codec := newTestCodec(t, WithThreshold(10))
	split, err := codec.SplitBytes(jpegBytes)
	if err != nil {
		t.Fatal(err)
	}
	op := Resize(100, 80, FilterTriangle).Then(Blur(0.8))
	served := fabricateServed(t, split.PublicJPEG, op)
	rec, err := codec.JoinProcessedBytes(served, split.SecretBlob, op)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Width() != 100 || rec.Height() != 80 {
		t.Fatalf("reconstructed %dx%d, want 100x80", rec.Width(), rec.Height())
	}
	orig := &Image{pix: coeffs.ToPlanar()}
	want := op.Apply(orig)
	psnr, err := vision.PSNR(want.pix, rec.pix)
	if err != nil {
		t.Fatal(err)
	}
	if psnr < 30 {
		t.Errorf("processed reconstruction %.1f dB, want >= 30", psnr)
	}
}

// TestJoinProcessedAgainstPSP reconstructs from a variant rendered by the
// real (internal) PSP pipeline, describing what it did with the public
// Transform vocabulary.
func TestJoinProcessedAgainstPSP(t *testing.T) {
	jpegBytes, coeffs := testJPEG(t, 14, 400, 300, jpegx.Sub420)
	codec := newTestCodec(t)
	split, err := codec.SplitBytes(jpegBytes)
	if err != nil {
		t.Fatal(err)
	}
	// A Flickr-like PSP: Catmull-Rom fit-within resize, baseline re-encode.
	pipeline := psp.FlickrLike()
	served, err := pipeline.Render(split.PublicJPEG, nil, 130, 130)
	if err != nil {
		t.Fatal(err)
	}
	w, h := FitWithin(400, 300, 130, 130)
	op := Resize(w, h, FilterCatmullRom)
	rec, err := codec.JoinProcessedBytes(served, split.SecretBlob, op)
	if err != nil {
		t.Fatal(err)
	}
	want := op.Apply(&Image{pix: coeffs.ToPlanar()})
	psnr, err := vision.PSNR(want.pix, rec.pix)
	if err != nil {
		t.Fatal(err)
	}
	if psnr < 28 {
		t.Errorf("PSP-processed reconstruction %.1f dB, want >= 28", psnr)
	}
}

// TestJoinProcessedGammaTail covers the §3.3 invertible-remap path: a linear
// prefix followed by gamma.
func TestJoinProcessedGammaTail(t *testing.T) {
	jpegBytes, coeffs := testJPEG(t, 15, 160, 120, jpegx.Sub420)
	codec := newTestCodec(t, WithThreshold(10))
	split, err := codec.SplitBytes(jpegBytes)
	if err != nil {
		t.Fatal(err)
	}
	op := Resize(80, 60, FilterLanczos).Then(Gamma(1.2))
	if op.Linear() {
		t.Fatal("gamma transform should not report linear")
	}
	served := fabricateServed(t, split.PublicJPEG, op)
	rec, err := codec.JoinProcessedBytes(served, split.SecretBlob, op)
	if err != nil {
		t.Fatal(err)
	}
	want := op.Apply(&Image{pix: coeffs.ToPlanar()})
	psnr, err := vision.PSNR(want.pix, rec.pix)
	if err != nil {
		t.Fatal(err)
	}
	if psnr < 25 {
		t.Errorf("gamma-tail reconstruction %.1f dB, want >= 25", psnr)
	}
	// Gamma anywhere but last is not reconstructable.
	bad := Gamma(1.2).Then(Resize(80, 60, FilterLanczos))
	if _, err := codec.JoinProcessedBytes(served, split.SecretBlob, bad); err == nil {
		t.Error("mid-pipeline gamma accepted")
	}
}

func TestWrongKeyAndTamperedBlob(t *testing.T) {
	jpegBytes, _ := testJPEG(t, 16, 128, 96, jpegx.Sub420)
	codec := newTestCodec(t)
	split, err := codec.SplitBytes(jpegBytes)
	if err != nil {
		t.Fatal(err)
	}
	eve := newTestCodec(t)
	if _, err := eve.JoinBytes(split.PublicJPEG, split.SecretBlob); !errors.Is(err, ErrAuth) {
		t.Errorf("wrong key: got %v, want ErrAuth", err)
	}
	if _, err := eve.JoinProcessedBytes(split.PublicJPEG, split.SecretBlob, Transform{}); !errors.Is(err, ErrAuth) {
		t.Errorf("wrong key (processed): got %v, want ErrAuth", err)
	}
	tampered := append([]byte(nil), split.SecretBlob...)
	tampered[len(tampered)/2] ^= 0x40
	if _, err := codec.JoinBytes(split.PublicJPEG, tampered); !errors.Is(err, ErrAuth) {
		t.Errorf("tampered blob: got %v, want ErrAuth", err)
	}
}

func TestThresholdValidation(t *testing.T) {
	key, err := NewKey()
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []int{-5, 0, MaxThreshold + 1} {
		_, err := New(key, WithThreshold(bad))
		var te *ThresholdError
		if !errors.As(err, &te) {
			t.Errorf("WithThreshold(%d): got %v, want *ThresholdError", bad, err)
		} else if te.Threshold != bad {
			t.Errorf("WithThreshold(%d): error carries %d", bad, te.Threshold)
		}
	}
	if _, err := New(key, WithThreshold(1), WithThreshold(MaxThreshold)); err != nil {
		t.Errorf("valid thresholds rejected: %v", err)
	}
	// The deprecated wrapper rejects negative thresholds with the same type.
	var te *ThresholdError
	if _, err := Split([]byte("x"), key, &Options{Threshold: -1}); !errors.As(err, &te) {
		t.Errorf("deprecated Split(-1): got %v, want *ThresholdError", err)
	}
}

// TestConstantsMatchCore pins the public constants to the algorithm's.
func TestConstantsMatchCore(t *testing.T) {
	if DefaultThreshold != core.DefaultThreshold {
		t.Errorf("DefaultThreshold %d != core %d", DefaultThreshold, core.DefaultThreshold)
	}
	if MaxThreshold != core.MaxThreshold {
		t.Errorf("MaxThreshold %d != core %d", MaxThreshold, core.MaxThreshold)
	}
}

func TestPhotoVariantQueryRoundTrip(t *testing.T) {
	for _, v := range []PhotoVariant{
		{},
		{Size: "big"},
		{W: 120, H: 90},
		{W: 64},
		{H: 48},
		{Crop: &CropRect{X: 8, Y: 16, W: 100, H: 50}},
		{W: 64, H: 64, Crop: &CropRect{X: 1, Y: 2, W: 3, H: 4}},
	} {
		got, err := ParsePhotoVariant(v.Query())
		if err != nil {
			t.Fatalf("%+v: %v", v, err)
		}
		if got.Size != v.Size || got.W != v.W || got.H != v.H {
			t.Errorf("round trip %+v -> %+v", v, got)
		}
		if (got.Crop == nil) != (v.Crop == nil) || (v.Crop != nil && *got.Crop != *v.Crop) {
			t.Errorf("crop round trip %+v -> %+v", v.Crop, got.Crop)
		}
	}
	if _, err := ParsePhotoVariant(url.Values{"crop": {"1,2,3"}}); err == nil {
		t.Error("short crop accepted")
	}
	if _, err := ParsePhotoVariant(url.Values{"w": {"-3"}}); err == nil {
		t.Error("negative width accepted")
	}
}

// TestNoInternalTypesInExportedAPI parses the package source and asserts
// that no exported declaration — function or method signature, struct
// field, type alias, interface method, or explicitly typed var/const —
// references a type from an internal package. This is what makes the facade
// usable from outside the module.
func TestNoInternalTypesInExportedAPI(t *testing.T) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, ".", func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	pkg, ok := pkgs["p3"]
	if !ok {
		t.Fatalf("package p3 not found in %v", pkgs)
	}
	for fname, file := range pkg.Files {
		internalImports := map[string]bool{} // local name → is internal
		for _, imp := range file.Imports {
			p, _ := strconv.Unquote(imp.Path.Value)
			name := path.Base(p)
			if imp.Name != nil {
				name = imp.Name.Name
			}
			if strings.Contains(p, "internal/") {
				internalImports[name] = true
			}
		}
		check := func(what string, expr ast.Expr) {
			if expr == nil {
				return
			}
			ast.Inspect(expr, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				if id, ok := sel.X.(*ast.Ident); ok && internalImports[id.Name] {
					t.Errorf("%s: %s references internal type %s.%s",
						fname, what, id.Name, sel.Sel.Name)
				}
				return true
			})
		}
		checkFields := func(what string, fl *ast.FieldList, exportedOnly bool) {
			if fl == nil {
				return
			}
			for _, f := range fl.List {
				if exportedOnly && len(f.Names) > 0 {
					anyExported := false
					for _, n := range f.Names {
						if n.IsExported() {
							anyExported = true
						}
					}
					if !anyExported {
						continue
					}
				}
				check(what, f.Type)
			}
		}
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				exported := d.Name.IsExported()
				if d.Recv != nil {
					// Methods count when the receiver's base type is exported.
					recv := d.Recv.List[0].Type
					for {
						if star, ok := recv.(*ast.StarExpr); ok {
							recv = star.X
							continue
						}
						break
					}
					if id, ok := recv.(*ast.Ident); ok && !id.IsExported() {
						exported = false
					}
				}
				if !exported {
					continue
				}
				what := "func " + d.Name.Name
				checkFields(what, d.Type.Params, false)
				checkFields(what, d.Type.Results, false)
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						if !s.Name.IsExported() {
							continue
						}
						what := "type " + s.Name.Name
						switch ty := s.Type.(type) {
						case *ast.StructType:
							checkFields(what, ty.Fields, true)
						case *ast.InterfaceType:
							checkFields(what, ty.Methods, false)
						default:
							check(what, s.Type)
						}
					case *ast.ValueSpec:
						for _, n := range s.Names {
							if n.IsExported() {
								check("var/const "+n.Name, s.Type)
							}
						}
					}
				}
			}
		}
	}
}
