package p3

import (
	"fmt"
	"image"
	"io"

	"p3/internal/jpegx"
)

// Image is a decoded photo: full-resolution YCbCr (or grayscale) pixel
// planes, as produced by DecodeImage and by the reconstruction methods.
type Image struct {
	pix *jpegx.PlanarImage
}

// DecodeImage decodes a JPEG into an Image.
func DecodeImage(r io.Reader) (*Image, error) {
	pix, err := jpegx.DecodeToPlanar(r)
	if err != nil {
		return nil, fmt.Errorf("p3: decoding image: %w", err)
	}
	return &Image{pix: pix}, nil
}

// Width returns the image width in pixels.
func (im *Image) Width() int { return im.pix.Width }

// Height returns the image height in pixels.
func (im *Image) Height() int { return im.pix.Height }

// Image converts to a standard library image for display or interop.
func (im *Image) Image() image.Image { return im.pix.ToImage() }

// EncodeJPEG writes the image as a baseline JPEG with 4:2:0 chroma
// subsampling at the given quality (1–100).
func (im *Image) EncodeJPEG(w io.Writer, quality int) error {
	coeffs, err := im.pix.ToCoeffs(quality, jpegx.Sub420)
	if err != nil {
		return fmt.Errorf("p3: encoding image: %w", err)
	}
	return jpegx.EncodeCoeffs(w, coeffs, &jpegx.EncodeOptions{OptimizeHuffman: true})
}
