package p3

// The benchmark harness: one benchmark per table/figure of the paper's
// evaluation (§5), plus ablations and micro-benchmarks of the substrates.
// Figure benchmarks run a reduced-size version of the corresponding
// experiment each iteration and report the headline quantity as a custom
// metric, so `go test -bench=. -benchmem` regenerates every result.
// `go run ./cmd/experiments -fig all` prints the full paper-style tables.

import (
	"bytes"
	"math/rand"
	"runtime"
	"strconv"
	"testing"

	"p3/internal/core"
	"p3/internal/dataset"
	"p3/internal/experiments"
	"p3/internal/imaging"
	"p3/internal/jpegx"
	"p3/internal/vision"
	"p3/internal/vision/eigen"
	"p3/internal/vision/haar"
	"p3/internal/vision/sift"
)

// parseCell reads a numeric cell from an experiments table.
func parseCell(b *testing.B, t *experiments.Table, row, col int) float64 {
	b.Helper()
	v, err := strconv.ParseFloat(t.Rows[row][col], 64)
	if err != nil {
		b.Fatalf("cell (%d,%d) = %q: %v", row, col, t.Rows[row][col], err)
	}
	return v
}

func BenchmarkFig5_SizeVsThreshold(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.Fig5SizeVsThreshold(experiments.SIPI, []int{1, 15, 100}, 6)
		if err != nil {
			b.Fatal(err)
		}
		// Row 1 = T=15 (the knee): report secret fraction and total overhead.
		b.ReportMetric(parseCell(b, t, 1, 2), "secretFrac@T15")
		b.ReportMetric(parseCell(b, t, 1, 3), "totalFrac@T15")
	}
}

func BenchmarkFig6_PSNRVsThreshold(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.Fig6PSNRVsThreshold(experiments.SIPI, []int{1, 15, 100}, 6)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(parseCell(b, t, 1, 1), "publicPSNRdB@T15")
		b.ReportMetric(parseCell(b, t, 1, 3), "secretPSNRdB@T15")
	}
}

func BenchmarkFig7_EncodeCanonical(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pairs, err := experiments.Fig7Canonical()
		if err != nil {
			b.Fatal(err)
		}
		if len(pairs) != 5 {
			b.Fatalf("%d pairs", len(pairs))
		}
	}
}

func BenchmarkFig8a_EdgeDetection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.Fig8aEdgeDetection([]int{15, 100}, 4)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(parseCell(b, t, 0, 1), "edgeMatchPct@T15")
		b.ReportMetric(parseCell(b, t, 1, 1), "edgeMatchPct@T100")
	}
}

func BenchmarkFig8b_FaceDetection(b *testing.B) {
	if _, err := haar.Default(); err != nil { // train outside the timer
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t, err := experiments.Fig8bFaceDetection([]int{15}, 6)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(parseCell(b, t, 0, 1), "facesPublic@T15")
		b.ReportMetric(parseCell(b, t, 0, 2), "facesOriginal")
	}
}

func BenchmarkFig8c_SIFT(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.Fig8cSIFT([]int{15, 100}, 3)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(parseCell(b, t, 0, 1), "siftDetected@T15")
		b.ReportMetric(parseCell(b, t, 1, 2), "siftMatched@T100")
	}
}

func BenchmarkFig8d_FaceRecognition(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.Fig8dFaceRecognition([]int{20}, 10, 5)
		if err != nil {
			b.Fatal(err)
		}
		// Row 0 = Normal-Normal baseline, row 2 = T20-Normal-Public.
		b.ReportMetric(parseCell(b, t, 0, 1), "rank1Baseline")
		b.ReportMetric(parseCell(b, t, 2, 1), "rank1NormalPublic@T20")
	}
}

func BenchmarkFig10_Bandwidth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.Fig10Bandwidth([]int{15}, 4)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(parseCell(b, t, 0, 2), "overheadKB@T15_720")
		b.ReportMetric(parseCell(b, t, 0, 4), "overheadKB@T15_75")
	}
}

func BenchmarkRecon_KnownTransform(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.ReconstructionAccuracy(4)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(parseCell(b, t, 0, 1), "knownPSNRdB")
	}
}

func BenchmarkRecon_UnknownPipeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.ReconstructionAccuracy(4)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(parseCell(b, t, 1, 1), "facebookPSNRdB")
		b.ReportMetric(parseCell(b, t, 2, 1), "flickrPSNRdB")
	}
}

// §5.3 processing-cost micro-benchmarks on a 720×720 photo, driven through
// the public Codec facade.

func cost720(b *testing.B) ([]byte, *Codec) {
	b.Helper()
	img := dataset.Natural(0x0c057, 720, 720)
	im, err := img.ToCoeffs(92, jpegx.Sub420)
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if err := jpegx.EncodeCoeffs(&buf, im, nil); err != nil {
		b.Fatal(err)
	}
	return buf.Bytes(), newTestCodec(b)
}

func BenchmarkCost_Split(b *testing.B) {
	jpegBytes, codec := cost720(b)
	b.SetBytes(int64(len(jpegBytes)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := codec.SplitBytes(jpegBytes); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCost_SealSecret(b *testing.B) {
	jpegBytes, codec := cost720(b)
	key := core.Key(codec.Key())
	out, err := codec.SplitBytes(jpegBytes)
	if err != nil {
		b.Fatal(err)
	}
	_, secJPEG, err := core.OpenSecret(key, out.SecretBlob)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(secJPEG)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.SealSecret(key, out.Threshold, secJPEG); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCost_OpenSecret(b *testing.B) {
	jpegBytes, codec := cost720(b)
	out, err := codec.SplitBytes(jpegBytes)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(out.SecretBlob)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := core.OpenSecret(core.Key(codec.Key()), out.SecretBlob); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCost_Reconstruct(b *testing.B) {
	jpegBytes, codec := cost720(b)
	out, err := codec.SplitBytes(jpegBytes)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := codec.JoinBytes(out.PublicJPEG, out.SecretBlob); err != nil {
			b.Fatal(err)
		}
	}
}

// Facade allocation benchmarks: the reused Codec recycles its encode
// scratch via sync.Pool, so its split path allocates measurably less than
// back-to-back calls to the deprecated package-level Split. Compare with
// `go test -bench=BenchmarkFacade_Split -benchmem`.

func BenchmarkFacade_SplitPerCall(b *testing.B) {
	jpegBytes, codec := cost720(b)
	key := codec.Key()
	b.SetBytes(int64(len(jpegBytes)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Split(jpegBytes, key, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFacade_SplitCodecReuse(b *testing.B) {
	jpegBytes, codec := cost720(b)
	b.SetBytes(int64(len(jpegBytes)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := codec.SplitBytes(jpegBytes); err != nil {
			b.Fatal(err)
		}
	}
}

// Parallel pipeline benchmarks: the same hot path at parallelism 1 vs all
// cores. Outputs are byte-identical (TestCodecParallelMatchesSequential);
// only the wall clock differs. Compare with
// `go test -bench=BenchmarkFacade_Split -benchmem`.

func benchParallelCodec(b *testing.B, n int) *Codec {
	b.Helper()
	key, err := NewKey()
	if err != nil {
		b.Fatal(err)
	}
	codec, err := New(key, WithParallelism(n))
	if err != nil {
		b.Fatal(err)
	}
	return codec
}

func benchSplit(b *testing.B, codec *Codec) {
	b.Helper()
	jpegBytes, _ := cost720(b)
	b.SetBytes(int64(len(jpegBytes)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := codec.SplitBytes(jpegBytes); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFacade_SplitSequential(b *testing.B) {
	benchSplit(b, benchParallelCodec(b, 1))
}

func BenchmarkFacade_SplitParallel(b *testing.B) {
	benchSplit(b, benchParallelCodec(b, runtime.GOMAXPROCS(0)))
}

func benchJoin(b *testing.B, codec *Codec) {
	b.Helper()
	jpegBytes, _ := cost720(b)
	out, err := codec.SplitBytes(jpegBytes)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(jpegBytes)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := codec.JoinBytes(out.PublicJPEG, out.SecretBlob); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFacade_JoinSequential(b *testing.B) {
	benchJoin(b, benchParallelCodec(b, 1))
}

func BenchmarkFacade_JoinParallel(b *testing.B) {
	benchJoin(b, benchParallelCodec(b, runtime.GOMAXPROCS(0)))
}

// Ablation benchmarks for the design choices DESIGN.md calls out.

func BenchmarkAblation_SignCorrection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.AblationSignCorrection(0, 4)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(parseCell(b, t, 0, 1), "clipBytes")
		b.ReportMetric(parseCell(b, t, 1, 1), "zeroBytes")
	}
}

func BenchmarkAblation_DCPlacement(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.AblationDCPlacement(0, 4)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(parseCell(b, t, 0, 1), "psnrDCSecret")
		b.ReportMetric(parseCell(b, t, 1, 1), "psnrDCPublic")
	}
}

func BenchmarkAblation_ReconDomain(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationReconDomain(0, 4); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblation_SecretEntropy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.AblationSecretEntropy(0, 4)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(parseCell(b, t, 1, 3), "secretSavingPct")
	}
}

// Substrate micro-benchmarks.

func BenchmarkJPEG_DecodeCoeffs(b *testing.B) {
	img := dataset.Natural(3, 512, 384)
	im, err := img.ToCoeffs(92, jpegx.Sub420)
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if err := jpegx.EncodeCoeffs(&buf, im, nil); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(buf.Len()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := jpegx.Decode(bytes.NewReader(buf.Bytes())); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkJPEG_EncodeCoeffs(b *testing.B) {
	img := dataset.Natural(3, 512, 384)
	im, err := img.ToCoeffs(92, jpegx.Sub420)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := jpegx.EncodeCoeffs(&buf, im, nil); err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(buf.Len()))
	}
}

func BenchmarkJPEG_EncodeProgressive(b *testing.B) {
	img := dataset.Natural(3, 512, 384)
	im, err := img.ToCoeffs(92, jpegx.Sub420)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := jpegx.EncodeCoeffs(&buf, im, &jpegx.EncodeOptions{Progressive: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDCT_Forward(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	var src, dst [64]float64
	for i := range src {
		src[i] = rng.Float64()*255 - 128
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		jpegx.FDCT8x8(&src, &dst)
	}
}

func BenchmarkImaging_ResizeLanczos(b *testing.B) {
	img := dataset.Natural(5, 720, 540)
	op := imaging.Resize{W: 130, H: 98, Filter: imaging.Lanczos3}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op.Apply(img)
	}
}

func BenchmarkVision_Canny(b *testing.B) {
	g := vision.Luma(dataset.Natural(6, 256, 256))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vision.Canny{}.Detect(g)
	}
}

func BenchmarkVision_SIFTDetect(b *testing.B) {
	g := vision.Luma(dataset.Natural(7, 128, 128))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sift.Detect(g, nil)
	}
}

func BenchmarkVision_HaarDetect(b *testing.B) {
	c, err := haar.Default()
	if err != nil {
		b.Fatal(err)
	}
	img, _ := dataset.Scene(1, 160, 160, 1)
	g := vision.Luma(img)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Detect(g, nil)
	}
}

func BenchmarkVision_EigenTrain(b *testing.B) {
	fc := dataset.FERETCorpus(10, 2, 32, 40, 1)
	faces := make([]*vision.Gray, len(fc))
	for i := range fc {
		faces[i] = vision.Luma(fc[i].Img)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eigen.Train(faces, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCore_SplitCoeffs(b *testing.B) {
	img := dataset.Natural(8, 512, 384)
	im, err := img.ToCoeffs(92, jpegx.Sub420)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := core.Split(im, core.DefaultThreshold); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCore_PipelineSearch(b *testing.B) {
	input := dataset.Natural(9, 128, 128)
	hidden := imaging.Compose{
		imaging.Resize{W: 64, H: 64, Filter: imaging.Lanczos3},
		imaging.Sharpen{Sigma: 1, Amount: 0.5},
	}
	output := imaging.Clamp(hidden.Apply(input))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.SearchParams(input, output)
	}
}
